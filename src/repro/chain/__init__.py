"""Compiled consistency-chain engine (interning, compilation, backends).

The package-level API:

* :func:`compile_chain` -- compile (or fetch memoized/cached) the chain
  of one ``(alpha, ports)`` configuration;
* :class:`CompiledChain` -- interned states, sparse integer transitions,
  and every query of the seed :class:`~repro.core.markov.ConsistencyChain`
  under both an exact ``Fraction`` backend and a numpy ``float64``
  backend (``backend="exact" | "float"``);
* :func:`configure_disk_cache` -- persist compilations across worker
  processes and runs (LRU ``max_bytes``/``max_entries`` caps optional);
* :func:`run_queries` / :class:`QueryBatch` -- answer whole sets of
  ``(task, horizon, quantity)`` questions against one chain in shared
  topologically-ordered passes (:mod:`repro.chain.batch`);
* :class:`SharedChainStore` / :func:`configure_shared_chains` -- place
  compiled arrays in ``multiprocessing.shared_memory`` so pool workers
  attach zero-copy views instead of re-loading from disk
  (:mod:`repro.chain.shm`).

``repro.core.markov`` keeps its historical API as a thin facade over
this engine; see ``CHAIN.md`` for the design.
"""

from .backends import (
    BACKENDS,
    evolution_strategy,
    transition_density,
    validate_backend,
)
from .batch import (
    QUANTITIES,
    Query,
    QueryBatch,
    QueryPlan,
    batching_enabled,
    configure_batching,
    run_queries,
    run_query_batch,
)
from .cache import (
    CacheEntry,
    ChainDiskCache,
    configure_disk_cache,
    disk_cache,
)
from .engine import (
    DEFAULT_DISTRIBUTION_CACHE_CAP,
    DENSE_STATE_LIMIT,
    MAX_NODES,
    ChainKey,
    CompiledChain,
    back_port_tables,
    chain_key,
    clear_memo,
    compile_chain,
    memo_size,
    memoized_chain,
    neighbour_tables,
    refine_labels,
    set_distribution_cache_cap,
)
from .multi import (
    MAX_GROUP_STATES,
    ChainGroup,
    MultiQueryPlan,
    configure_grouping,
    group_state_budget,
    grouping_enabled,
    plan_chunks,
    run_group_queries,
)
from .quotient import (
    QUOTIENT_MODES,
    QuotientChain,
    automorphism_count,
    automorphism_generators,
    configure_quotient,
    effective_chain_key,
    is_chain_automorphism,
    is_quotient_key,
    quotient_key,
    quotient_mode,
    resolve_quotient,
)
from .shm import (
    SharedChainStore,
    attach_chain,
    configure_shared_chains,
    configure_shared_groups,
    shared_chain,
    shared_group,
)
from .interning import (
    LabelVector,
    StateTable,
    block_count,
    block_sizes,
    blocks_from_labels,
    canonical_labels,
    labels_from_blocks,
)

__all__ = [
    "BACKENDS",
    "CacheEntry",
    "ChainDiskCache",
    "ChainGroup",
    "ChainKey",
    "CompiledChain",
    "DEFAULT_DISTRIBUTION_CACHE_CAP",
    "DENSE_STATE_LIMIT",
    "LabelVector",
    "MAX_GROUP_STATES",
    "MAX_NODES",
    "MultiQueryPlan",
    "QUANTITIES",
    "QUOTIENT_MODES",
    "Query",
    "QueryBatch",
    "QueryPlan",
    "QuotientChain",
    "SharedChainStore",
    "StateTable",
    "attach_chain",
    "automorphism_count",
    "automorphism_generators",
    "back_port_tables",
    "batching_enabled",
    "block_count",
    "block_sizes",
    "blocks_from_labels",
    "canonical_labels",
    "chain_key",
    "clear_memo",
    "compile_chain",
    "configure_batching",
    "configure_disk_cache",
    "configure_grouping",
    "configure_quotient",
    "configure_shared_chains",
    "configure_shared_groups",
    "disk_cache",
    "effective_chain_key",
    "evolution_strategy",
    "grouping_enabled",
    "is_chain_automorphism",
    "is_quotient_key",
    "labels_from_blocks",
    "memo_size",
    "memoized_chain",
    "neighbour_tables",
    "group_state_budget",
    "plan_chunks",
    "quotient_key",
    "quotient_mode",
    "refine_labels",
    "resolve_quotient",
    "run_group_queries",
    "run_queries",
    "run_query_batch",
    "set_distribution_cache_cap",
    "shared_chain",
    "shared_group",
    "transition_density",
    "validate_backend",
]
