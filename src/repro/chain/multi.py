"""Block-diagonal multi-chain execution: one pass per sweep, not per chain.

The batched query layer (:mod:`repro.chain.batch`) collapsed *within*-
chain dispatch -- one :class:`~repro.chain.batch.QueryPlan` answers a
whole set of ``(task, horizon, quantity)`` questions against one chain
in shared passes.  Sweeps still paid *across* chains: a 200-point phase
diagram compiles 200 small chains and runs 200 small numpy passes, each
dominated by fixed per-call dispatch rather than arithmetic.

This module stacks whole families of chains into one numerical object:

* :class:`ChainGroup` places ``N`` compiled chains block-diagonally --
  concatenated state ids (chain ``c``'s states live at ``offsets[c] ..
  offsets[c] + S_c``), concatenated COO transition arrays, every chain's
  start state carrying unit mass -- so one evolution step advances every
  chain at once (blocks never mix: all edges stay inside their chain).
  Reverse level sweeps run over a **merged, end-aligned level
  schedule**: group step ``j`` processes each chain's ``j``-th level
  *from the end*, which preserves every chain's reverse-topological
  order (cross edges only ever point at levels already processed) while
  letting chains with different level structures share each pass.
* :class:`MultiQueryPlan` / :func:`run_group_queries` answer an entire
  sweep axis -- every ``(chain, task, horizon, quantity)`` cell -- in
  single vectorized evolution and reverse-level passes under the float
  backend.  Task masks are stacked per chain and padded to the widest
  chain's row count, so the common sweep shape (same queries against
  every chain) needs exactly as many sweep rows as one chain does.
  The exact backend iterates chain by chain through the *same*
  :class:`~repro.chain.batch.QueryPlan` objects the per-chain path
  uses, so grouped exact results are byte-identical to per-chain
  :class:`~repro.chain.batch.QueryBatch` results by construction.

Grouping is skipped -- every item falls back to a per-chain
:func:`~repro.chain.batch.run_queries` call with identical results --
when the process-wide toggle is off (:func:`configure_grouping`, the
CLI's ``--group-chains/--no-group-chains``) or when per-chain batching
itself is off.  A singleton group degenerates to the per-chain plan.

The grouping key is deliberately coarse: the merged level schedule makes
*any* chains structurally compatible, so chains are stacked greedily in
item order under a total-state budget (:data:`MAX_GROUP_STATES`) that
bounds each stacked pass's working set; a chain bigger than the budget
gets a singleton group of its own.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..obs import OBS, trace
from .backends import (
    absorption_exact,
    evolution_strategy,
    transition_density,
    validate_backend,
)
from .batch import (
    Query,
    QueryPlan,
    _assert_zero_one,
    batching_enabled,
    memoized_answers,
    record_answers,
    run_queries,
)

#: Stacked-state budget per :class:`ChainGroup`: groups are split so one
#: stacked pass never sweeps more than this many states (the mask and
#: value matrices are ``rows x states`` float64).
MAX_GROUP_STATES = 1 << 15

#: How many built groups to keep around: a sweep re-queried across
#: backends, tasks, or resume passes stacks the same chain families
#: every time, and rebuilding the merged schedule is the dominant cost
#: of a warm group pass.  Keyed by member identity (compiled chains are
#: process-immortal via the memo); the strong references the cache holds
#: keep the ids valid for exactly as long as the entries live.
GROUP_CACHE_SIZE = 16

_GROUP_CACHE: "dict[tuple[int, ...], ChainGroup]" = {}


def group_state_budget() -> int:
    """The stacked-state budget in force for group chunking.

    :data:`MAX_GROUP_STATES` by default; under ``--policy measured`` a
    fitted ``group.budget`` cost model may *narrow* it (never widen --
    the static budget stays the hard working-set cap).  Chunk budgets
    only re-partition the same stacked passes, so the budget moves
    wall-clock and memory, never results.
    """
    from ..obs.policy import POLICY

    measured = POLICY.group_state_budget(MAX_GROUP_STATES)
    return MAX_GROUP_STATES if measured is None else measured


def plan_chunks(chains: Sequence) -> "list[list]":
    """Greedy partition of an ordered chain list under the state budget.

    The single chunking rule both sides of the shared-group handshake
    use: :class:`MultiQueryPlan` to split its items into stacked passes,
    and the sweep's publisher to predict those chunks and publish each
    one's :class:`ChainGroup` arrays ahead of time.  Repeated chains
    (the memo makes equal configurations the same object) count against
    the budget once per chunk, mirroring the stacking dedup.  The
    budget comes from :func:`group_state_budget`, so parent and pool
    workers agree on the partition as long as the policy is forwarded
    (the runner ships it in every chain-context payload).
    """
    budget = group_state_budget()
    chunks: list[list] = []
    current: list = []
    seen: set[int] = set()
    states = 0
    for chain in chains:
        size = 0 if id(chain) in seen else chain.num_states
        if current and states + size > budget:
            chunks.append(current)
            current, seen, states = [], set(), chain.num_states
        else:
            states += size
        current.append(chain)
        seen.add(id(chain))
    if current:
        chunks.append(current)
    return chunks


def _attach_shared_group(chains: Sequence) -> "ChainGroup | None":
    """A published prebuilt group for exactly these chains, or ``None``."""
    from .cache import key_digest
    from .shm import shared_group, shared_group_manifest

    if not shared_group_manifest():
        return None
    arrays = shared_group(key_digest(chain.key) for chain in chains)
    if arrays is None:
        return None
    try:
        return ChainGroup.from_arrays(chains, arrays)
    except Exception:
        # A malformed or mismatched segment must degrade to a local
        # rebuild, never fail the query pass.
        return None


def _cached_group(chains: Sequence) -> "ChainGroup":
    key = tuple(id(chain) for chain in chains)
    group = _GROUP_CACHE.pop(key, None)
    if group is None:
        group = _attach_shared_group(chains)
        if group is not None and OBS.enabled:
            OBS.metrics.inc("chain.multi.group_attach")
    if group is None:
        group = ChainGroup(chains)
    _GROUP_CACHE[key] = group  # (re)insert as most recently used
    while len(_GROUP_CACHE) > GROUP_CACHE_SIZE:
        _GROUP_CACHE.pop(next(iter(_GROUP_CACHE)))
    return group


class ChainGroup:
    """``N`` compiled chains stacked into block-diagonal flat arrays.

    Construction is one linear pass over the member chains' CSR arrays;
    the group owns nothing but index arrays (the chains keep their own
    caches), so groups are cheap enough to build per sweep call.
    """

    def __init__(self, chains: Sequence):
        self.chains = tuple(chains)
        if not self.chains:
            raise ValueError("a ChainGroup needs at least one chain")
        offsets = [0]
        for chain in self.chains:
            offsets.append(offsets[-1] + chain.num_states)
        #: Global id of chain ``c``'s state 0 (also the reduceat segment
        #: boundaries of the per-chain mass sums).
        self.offsets = np.asarray(offsets[:-1], dtype=np.int64)
        self.num_states = offsets[-1]
        #: Global ids of every chain's start state (each carries unit
        #: mass in the stacked evolution).
        self.starts = np.asarray(
            [off + chain.start for off, chain in zip(offsets, self.chains)],
            dtype=np.int64,
        )
        src_parts, dst_parts, w_parts, self_parts = [], [], [], []
        for off, chain in zip(offsets, self.chains):
            src, dst, weight = chain.coo()
            src_parts.append(src + off)
            dst_parts.append(dst + off)
            w_parts.append(weight)
            self_w = np.zeros(chain.num_states)
            loops = src == dst
            self_w[src[loops]] = weight[loops]
            self_parts.append(self_w)
        self._src = np.concatenate(src_parts)
        self._dst = np.concatenate(dst_parts)
        self._weight = np.concatenate(w_parts)
        self._self_w = np.concatenate(self_parts)
        self.num_transitions = int(len(self._src))
        #: Fraction of the stacked dense matrix occupied (block-diagonal
        #: stacking divides per-chain density by roughly the group size).
        self.density = transition_density(
            self.num_states, self.num_transitions
        )
        #: The adaptive dense-vs-scatter verdict for the stacked
        #: evolution (density-measured; see ``repro.chain.backends``).
        self.evolution = evolution_strategy(
            self.num_states, self.num_transitions
        )
        self._dense: "np.ndarray | None" = None
        self._steps = self._merged_level_steps(offsets)

    @classmethod
    def from_arrays(cls, chains: Sequence, arrays: dict) -> "ChainGroup":
        """Rebuild a group from published index arrays (zero-copy).

        ``arrays`` is the payload :func:`repro.chain.shm.shared_group`
        returns; the member ``chains`` must be the same chains, in the
        same order, the publisher stacked (validated structurally here
        on top of the digest check the attach already did).
        """
        group = cls.__new__(cls)
        group.chains = tuple(chains)
        if not group.chains:
            raise ValueError("a ChainGroup needs at least one chain")
        group.offsets = arrays["offsets"]
        group.num_states = int(arrays["num_states"])
        group.starts = arrays["starts"]
        expected = 0
        for position, chain in enumerate(group.chains):
            if int(group.offsets[position]) != expected:
                raise ValueError("group arrays do not match member chains")
            if int(group.starts[position]) != expected + chain.start:
                raise ValueError("group arrays do not match member chains")
            expected += chain.num_states
        if expected != group.num_states:
            raise ValueError("group arrays do not match member chains")
        group._src = arrays["src"]
        group._dst = arrays["dst"]
        group._weight = arrays["weight"]
        group._self_w = arrays["self_w"]
        group.num_transitions = int(len(group._src))
        group.density = transition_density(
            group.num_states, group.num_transitions
        )
        group.evolution = evolution_strategy(
            group.num_states, group.num_transitions
        )
        group._dense = None
        group._steps = [tuple(step) for step in arrays["steps"]]
        # Pin the shared-memory mapping for as long as the group lives.
        group._shm = arrays.get("shm")
        return group

    def __len__(self) -> int:
        return len(self.chains)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChainGroup(chains={len(self.chains)}, "
            f"states={self.num_states}, nnz={self.num_transitions}, "
            f"density={self.density:.4f}, evolution={self.evolution})"
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _merged_level_steps(self, offsets: list[int]):
        """The end-aligned reverse sweep schedule.

        Step ``j`` (processed first for ``j = 0``) covers each chain's
        ``j``-th level *counted from its deepest*: within a chain the
        deepest level is processed first exactly as the per-chain sweep
        does, and cross edges (strictly increasing block count) always
        land in a level the schedule has already processed.  Each step
        precomputes the global state ids it touches, its cross edges
        (edge source position within the step, global destination,
        weight), and is consumed by :meth:`reverse_sweep`.
        """
        depth = max(len(chain.levels()) for chain in self.chains)
        steps = []
        for j in range(depth):
            state_parts, pos_parts, dst_parts, w_parts = [], [], [], []
            base = 0
            for off, chain in zip(offsets, self.chains):
                levels = chain.levels()
                li = len(levels) - 1 - j
                if li < 0:
                    continue
                start, stop = levels[li]
                state_parts.append(np.arange(off + start, off + stop))
                indptr = chain.csr()[0]
                src, dst, weight = chain.coo()
                lo, hi = int(indptr[start]), int(indptr[stop])
                s, d, w = src[lo:hi], dst[lo:hi], weight[lo:hi]
                cross = s != d
                pos_parts.append(s[cross] - start + base)
                dst_parts.append(d[cross] + off)
                w_parts.append(w[cross])
                base += stop - start
            steps.append(
                (
                    np.concatenate(state_parts),
                    np.concatenate(pos_parts),
                    np.concatenate(dst_parts),
                    np.concatenate(w_parts),
                )
            )
        return steps

    def _mask_matrix(
        self, per_chain_masks: Sequence[Sequence], dtype
    ) -> np.ndarray:
        """Stack per-chain mask rows into a padded ``(Q, S_total)`` array.

        ``per_chain_masks[c]`` is chain ``c``'s ordered mask rows; rows a
        chain does not fill stay zero/False (their swept values are
        computed but never read).
        """
        rows = max((len(masks) for masks in per_chain_masks), default=0)
        matrix = np.zeros((rows, self.num_states), dtype=dtype)
        for off, masks in zip(self.offsets, per_chain_masks):
            for q, mask in enumerate(masks):
                matrix[q, off:off + len(mask)] = np.asarray(mask, dtype=dtype)
        return matrix

    def _dense_matrix(self) -> np.ndarray:
        if self._dense is None:
            dense = np.zeros((self.num_states, self.num_states))
            dense[self._src, self._dst] = self._weight
            self._dense = dense
        return self._dense

    # ------------------------------------------------------------------
    # Stacked kernels
    # ------------------------------------------------------------------
    def masses_over_time(
        self,
        per_chain_masks: Sequence[Sequence],
        times: Iterable[int],
    ) -> dict[int, np.ndarray]:
        """Per-chain masked masses at each requested time, in one evolution.

        One stacked evolution to ``max(times)`` advances every chain at
        once; the result maps each requested ``t`` to a ``(Q, N)``
        array whose ``[q, c]`` entry is chain ``c``'s mass under its
        ``q``-th mask row.
        """
        wanted = sorted(set(int(t) for t in times))
        if wanted and wanted[0] < 0:
            raise ValueError("need t >= 0")
        mask_matrix = self._mask_matrix(per_chain_masks, np.float64)
        dist = np.zeros(self.num_states)
        dist[self.starts] = 1.0
        out: dict[int, np.ndarray] = {}

        def masses() -> np.ndarray:
            return np.add.reduceat(
                mask_matrix * dist[None, :], self.offsets, axis=1
            )

        if wanted and wanted[0] == 0:
            out[0] = masses()
        remaining = set(wanted)
        dense = self._dense_matrix() if self.evolution == "dense" else None
        for t in range(1, (wanted[-1] if wanted else 0) + 1):
            if dense is not None:
                dist = dist @ dense
            else:
                dist = np.bincount(
                    self._dst,
                    weights=dist[self._src] * self._weight,
                    minlength=self.num_states,
                )
            if t in remaining:
                out[t] = masses()
        return out

    def reverse_sweep(
        self,
        per_chain_masks: Sequence[Sequence],
        *,
        accumulator_init: float,
        masked_value: float,
        absorbing_value: float,
    ) -> np.ndarray:
        """The stacked first-step-equation solver (every chain at once).

        Semantics per mask row are exactly those of
        :func:`~repro.chain.backends._reverse_level_sweep` -- absorption
        uses ``(init=0, masked=1, absorbing=0)``, expected hitting time
        ``(init=1, masked=0, absorbing=inf)`` -- swept over the merged
        end-aligned schedule.  Returns ``(Q, S_total)`` float64; chain
        ``c``'s row ``q`` answer from its start state is
        ``values[q, group.starts[c]]``.
        """
        mask_matrix = self._mask_matrix(per_chain_masks, bool)
        values = np.zeros((mask_matrix.shape[0], self.num_states))
        for state_idx, edge_pos, edge_dst, edge_w in self._steps:
            total = np.full(
                (mask_matrix.shape[0], len(state_idx)), accumulator_init
            )
            if len(edge_pos):
                np.add.at(
                    total,
                    (slice(None), edge_pos),
                    edge_w * values[:, edge_dst],
                )
            hold = 1.0 - self._self_w[state_idx]
            vals = np.divide(
                total,
                hold[None, :],
                out=np.full_like(total, absorbing_value),
                where=hold > 0.0,
            )
            values[:, state_idx] = np.where(
                mask_matrix[:, state_idx], masked_value, vals
            )
        return values


class MultiQueryPlan:
    """A batch of per-chain query batches, answered in group passes.

    ``items`` is a sequence of ``(chain, queries)`` pairs;
    :meth:`execute` returns one result list per item, each element-wise
    identical to ``run_queries(chain, queries)`` on that item alone
    (byte-identical under the exact backend, within float rounding --
    different but equally valid summation orders -- under float).
    """

    def __init__(self, items: Iterable[tuple]):
        self.items = [
            (chain, tuple(queries)) for chain, queries in items
        ]
        #: One per-chain plan per item: the single planning/dedup layer
        #: both backends share (the exact path executes these directly).
        self.plans = [
            QueryPlan(chain, queries) for chain, queries in self.items
        ]

    def __len__(self) -> int:
        return len(self.plans)

    def execute(self, *, backend: str = "exact") -> list[list]:
        """Answer every item's queries; one result list per item."""
        if validate_backend(backend) == "exact":
            # Per chain, through the shared per-item plans: the same
            # exact kernels, the same dedup, byte-identical results.
            return [plan.execute(backend="exact") for plan in self.plans]
        return self._execute_float()

    # ------------------------------------------------------------------
    # Float: stacked group passes
    # ------------------------------------------------------------------
    def _chunks(self) -> list[list[int]]:
        """Greedy item partition under the stacked-state budget.

        Items sharing one chain (the memo makes equal configurations
        the same object) are stacked once per chunk, so only *distinct*
        chains' states count against the budget -- mirroring the dedup
        :meth:`_execute_float_chunk` applies.  Delegates to
        :func:`plan_chunks` (chunks are contiguous item runs), the rule
        the sweep-side group publisher predicts with.
        """
        chunks: list[list[int]] = []
        start = 0
        for chunk in plan_chunks([plan.chain for plan in self.plans]):
            chunks.append(list(range(start, start + len(chunk))))
            start += len(chunk)
        return chunks

    def _execute_float(self) -> list[list]:
        results: list = [None] * len(self.plans)
        for chunk in self._chunks():
            self._execute_float_chunk(chunk, results)
        return results

    def _execute_float_chunk(
        self, chunk: list[int], results: list
    ) -> None:
        # Distinct chains only: several items may query one chain (the
        # memo makes equal configurations the same object).
        position: dict[int, int] = {}
        chains = []
        for index in chunk:
            chain = self.plans[index].chain
            if id(chain) not in position:
                position[id(chain)] = len(chains)
                chains.append(chain)
        group = _cached_group(chains)
        if OBS.enabled:
            OBS.metrics.inc("chain.multi.groups")
            OBS.metrics.inc(f"chain.multi.evolution.{group.evolution}")
            OBS.metrics.observe("chain.multi.group_states",
                                group.num_states)
            OBS.metrics.observe("chain.multi.group_chains", len(chains))
        # Per-chain row registries: mask -> row, one numbering per chain
        # (rows are per-chain because the group result is (Q, N)).
        mass_rows: list[dict] = [{} for _ in chains]
        limit_rows: list[dict] = [{} for _ in chains]
        expected_rows: list[dict] = [{} for _ in chains]
        mass_times: set[int] = set()
        for index in chunk:
            plan = self.plans[index]
            c = position[id(plan.chain)]
            mass_times |= plan._mass_times
            for slot in sorted(plan._mass_slots):
                mass_rows[c].setdefault(plan._masks[slot], len(mass_rows[c]))
            for slot in sorted(plan._limit_slots):
                limit_rows[c].setdefault(
                    plan._masks[slot], len(limit_rows[c])
                )
            for slot in sorted(plan._expected_slots):
                expected_rows[c].setdefault(
                    plan._masks[slot], len(expected_rows[c])
                )

        def ordered(rows: list[dict]) -> list[list]:
            return [list(chain_rows.keys()) for chain_rows in rows]

        masses: dict[int, np.ndarray] = {}
        if mass_times and any(mass_rows):
            masses = group.masses_over_time(ordered(mass_rows), mass_times)
        absorption: "np.ndarray | None" = None
        if any(limit_rows):
            absorption = group.reverse_sweep(
                ordered(limit_rows),
                accumulator_init=0.0,
                masked_value=1.0,
                absorbing_value=0.0,
            )
        expected: "np.ndarray | None" = None
        if any(expected_rows):
            expected = group.reverse_sweep(
                ordered(expected_rows),
                accumulator_init=1.0,
                masked_value=0.0,
                absorbing_value=np.inf,
            )
        # ``solvable`` stays exact whatever the backend (the zero-one
        # law is asserted on exact limits); dedup per (chain, mask).
        exact_absorption: dict[tuple[int, tuple], list] = {}
        for index in chunk:
            plan = self.plans[index]
            chain = plan.chain
            c = position[id(chain)]
            start = int(group.starts[c])
            out = []
            for query, slot in zip(plan.queries, plan._slots):
                mask = plan._masks[slot]
                if query.quantity == "probability":
                    out.append(
                        float(masses[query.horizon][mass_rows[c][mask], c])
                    )
                elif query.quantity == "series":
                    row = mass_rows[c][mask]
                    out.append(
                        [
                            float(masses[t][row, c])
                            for t in range(1, query.horizon + 1)
                        ]
                    )
                elif query.quantity == "limit":
                    out.append(
                        float(absorption[limit_rows[c][mask], start])
                    )
                elif query.quantity == "solvable":
                    key = (id(chain), mask)
                    if key not in exact_absorption:
                        exact_absorption[key] = absorption_exact(chain, mask)
                    out.append(
                        _assert_zero_one(
                            chain, exact_absorption[key][chain.start]
                        )
                    )
                else:  # expected
                    value = expected[expected_rows[c][mask], start]
                    out.append(None if np.isinf(value) else float(value))
            results[index] = out


# ----------------------------------------------------------------------
# The process-wide grouping toggle (CLI --group-chains/--no-group-chains)
# ----------------------------------------------------------------------
_GROUPING = True


def configure_grouping(enabled: bool) -> bool:
    """Turn the multi-chain group path on or off; returns the previous value.

    Exact results are identical either way (the group path executes the
    per-chain plans); float results agree to well under 1e-12.  The
    toggle exists so regressions bisect to the group layer and so
    benchmarks can time both paths.
    """
    global _GROUPING
    previous = _GROUPING
    _GROUPING = bool(enabled)
    return previous


def grouping_enabled() -> bool:
    return _GROUPING


def run_group_queries(
    items: Iterable[tuple], *, backend: str = "exact"
) -> list[list]:
    """Answer many chains' query batches at once; one list per item.

    ``items`` is a sequence of ``(chain, queries)`` pairs.  With
    grouping (and per-chain batching) enabled, the float backend runs
    stacked block-diagonal passes over :class:`ChainGroup`; the exact
    backend executes the per-chain plans (byte-identical to per-chain
    :func:`~repro.chain.batch.run_queries`).  With either toggle off,
    every item falls back to exactly that per-chain call.

    A configured cross-run query memo
    (:func:`repro.results.memo.configure_query_memo`) is consulted
    first: fully-memoized items never enter the group pass at all, and
    partially-memoized items contribute only their missing queries --
    so overlapping or repeated sweeps re-answer only genuinely new
    cells, with exact hits byte-identical to recomputation.
    """
    items = [(chain, list(queries)) for chain, queries in items]
    if not items:
        return []
    if not (_GROUPING and batching_enabled()):
        validate_backend(backend)
        return [
            run_queries(chain, queries, backend=backend)
            for chain, queries in items
        ]
    validate_backend(backend)
    results: list = [None] * len(items)
    pending: list[tuple] = []
    #: (item index, miss positions, per-query tokens, hit-filled answers)
    scatter: list[tuple] = []
    for index, (chain, queries) in enumerate(items):
        answers, tokens, misses = memoized_answers(chain, queries, backend)
        if not misses:
            if OBS.enabled:
                OBS.metrics.inc("chain.multi.items_memoized")
            results[index] = answers
            continue
        pending.append((chain, [queries[i] for i in misses]))
        scatter.append((index, misses, tokens, answers))
    if OBS.enabled:
        OBS.metrics.inc("chain.multi.items", len(items))
    if pending:
        if OBS.enabled:
            with trace("chain.multi.execute", items=len(pending)):
                computed = MultiQueryPlan(pending).execute(backend=backend)
        else:
            computed = MultiQueryPlan(pending).execute(backend=backend)
        for (index, misses, tokens, answers), values in zip(
            scatter, computed
        ):
            for i, value in zip(misses, values):
                answers[i] = value
            record_answers(tokens, misses, answers)
            results[index] = answers
    return results


__all__ = [
    "ChainGroup",
    "MAX_GROUP_STATES",
    "MultiQueryPlan",
    "configure_grouping",
    "group_state_budget",
    "grouping_enabled",
    "plan_chunks",
    "run_group_queries",
]
