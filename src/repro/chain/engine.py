"""The compiled consistency-chain engine.

:func:`compile_chain` explores the reachable consistency-partition space
of one ``(alpha, ports)`` pair exactly once and emits a
:class:`CompiledChain`: interned states (dense integer ids over
restricted-growth label vectors), sparse integer transition arrays, and
states topologically sorted by block count so absorption probabilities
and hitting times solve in a single reverse pass.

Transition weights are stored as integer counts out of ``2^(k-1)``
enumerated source-bit vectors (bit vectors and their complements refine
identically), so the exact backend reproduces the seed's ``Fraction``
results digit for digit while the float backend reads the same counts as
``float64`` weights.

A process-wide memo keyed by the chain's *structural* content (the
source assignment and the neighbour/back-port tables) means a sweep that
touches the same configuration from many call sites -- per task, per
time horizon, per experiment -- compiles it exactly once.  An optional
disk cache (:mod:`repro.chain.cache`) extends the memo across worker
processes and runs.
"""

from __future__ import annotations

import itertools
import weakref
from fractions import Fraction

import numpy as np

from ..obs import OBS, trace
from ..randomness.configuration import RandomnessConfiguration
from .backends import (
    absorption_exact,
    absorption_float,
    distribution_exact,
    distribution_float,
    expected_exact,
    expected_float,
    mass_exact,
    series_exact,
    series_float,
    step_exact,
    validate_backend,
)
from .interning import (
    LabelVector,
    StateTable,
    block_count,
    block_sizes,
    blocks_from_labels,
    canonical_labels,
)

#: Refuse chains that would be astronomically large.
MAX_NODES = 10

#: Structural memo key: (assignment, neighbour tables, back-port tables).
ChainKey = tuple

#: Chains at or below this many states keep a dense ``(S, S)`` float64
#: transition matrix for the batched query path (2 MB at the limit);
#: larger chains fall back to sparse scatter-adds.
DENSE_STATE_LIMIT = 512

#: Default cap on cached exact distributions per chain (entries, i.e.
#: time steps 0..cap-1).  Deeper horizons are still answered exactly by
#: stepping transiently past the last cached entry; they just stop
#: growing the per-chain cache.  See :func:`set_distribution_cache_cap`.
DEFAULT_DISTRIBUTION_CACHE_CAP = 1024


def set_distribution_cache_cap(cap: "int | None") -> None:
    """Bound every chain's exact-distribution cache to ``cap`` entries.

    ``None`` restores :data:`DEFAULT_DISTRIBUTION_CACHE_CAP`.  The cap
    is process-wide and applies to already-compiled chains too (their
    existing caches are not truncated, but stop growing past the cap).
    """
    if cap is None:
        cap = DEFAULT_DISTRIBUTION_CACHE_CAP
    if cap < 1:
        raise ValueError("distribution cache cap must be >= 1")
    CompiledChain.distribution_cache_cap = cap


def refine_labels(
    labels: LabelVector,
    node_bits: "tuple[int, ...]",
    neigh: "tuple[tuple[int, ...], ...] | None",
    back: "tuple[tuple[int, ...], ...] | None",
) -> LabelVector:
    """One synchronous refinement round on an integer label vector.

    ``node_bits[i]`` is node ``i``'s source bit this round; ``neigh`` is
    ``None`` for the blackboard (Eq. 1) or the per-node neighbour tables
    for message passing (Eq. 2); ``back`` additionally carries the
    sender-side ports under the classical anonymous-network semantics.
    """
    n = len(labels)
    if neigh is None:
        keys = [(labels[i], node_bits[i]) for i in range(n)]
    elif back is None:
        keys = [
            (
                labels[i],
                node_bits[i],
                tuple(labels[j] for j in neigh[i]),
            )
            for i in range(n)
        ]
    else:
        keys = [
            (
                labels[i],
                node_bits[i],
                tuple(
                    (labels[j], port)
                    for j, port in zip(neigh[i], back[i])
                ),
            )
            for i in range(n)
        ]
    relabel: dict = {}
    out = []
    for key in keys:
        index = relabel.get(key)
        if index is None:
            index = relabel[key] = len(relabel)
        out.append(index)
    return tuple(out)


def neighbour_tables(ports) -> tuple[tuple[int, ...], ...]:
    """Per-node neighbour tuples of a port assignment or graph topology."""
    return tuple(ports.neighbours(node) for node in range(ports.n))


def back_port_tables(ports) -> tuple[tuple[int, ...], ...]:
    """Sender-side ports of each received message, per node in port order."""
    return tuple(
        tuple(ports.port_to(nbr, node) for nbr in ports.neighbours(node))
        for node in range(ports.n)
    )


def chain_key(
    alpha: RandomnessConfiguration,
    ports=None,
    *,
    include_back_ports: bool = False,
) -> ChainKey:
    """The structural memo/cache key of a chain.

    Purely value-based: two :class:`PortAssignment`/``GraphTopology``
    objects with the same tables produce the same key, so memoization
    survives reconstruction of equal configurations.
    """
    if ports is None:
        return (alpha.assignment, None, None)
    neigh = neighbour_tables(ports)
    back = back_port_tables(ports) if include_back_ports else None
    return (alpha.assignment, neigh, back)


def _task_content_key(task) -> "tuple | None":
    """A value-based cache key for tasks that expose one.

    :class:`~repro.core.tasks.CountTask` legality is fully determined by
    ``(n, count multisets)``; other task classes return ``None`` and are
    cached by weak identity instead.
    """
    multisets = getattr(task, "count_multisets", None)
    if callable(multisets):
        return ("count", task.n, multisets())
    return None


class CompiledChain:
    """One configuration's consistency chain, compiled to flat arrays.

    States are dense integer ids, topologically sorted by block count
    (state 0 is the single-block initial state); transitions are stored
    per state as ``(dst, count)`` pairs with ``count`` out of
    :attr:`denom` enumerated source-bit vectors.  All queries accept a
    ``backend`` argument: ``"exact"`` (Fraction) or ``"float"`` (numpy).
    """

    #: Process-wide cap on the per-chain exact-distribution cache (see
    #: :func:`set_distribution_cache_cap`).
    distribution_cache_cap: int = DEFAULT_DISTRIBUTION_CACHE_CAP

    def __init__(
        self,
        key: ChainKey,
        n: int,
        k: int,
        labels: tuple[LabelVector, ...],
        out: "tuple[tuple[tuple[int, int], ...], ...] | None" = None,
        *,
        csr: "tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None,
    ):
        if (out is None) == (csr is None):
            raise ValueError("need exactly one of out= or csr=")
        self.key = key
        self.n = n
        self.k = k
        self.denom = 2 ** (k - 1)
        self.labels = labels
        self.block_counts = tuple(block_count(v) for v in labels)
        #: Per-state ``(dst, count)`` tuples; built lazily when the chain
        #: arrives as shared-memory CSR arrays (the exact backend is the
        #: only consumer, so a float-only worker never materializes it).
        self._out = out
        #: ``(indptr, dst, cnt)`` int64 arrays; for shared-memory chains
        #: these are zero-copy views into the published segment.
        self._csr = csr
        self._ids = {v: sid for sid, v in enumerate(labels)}
        self.start = self._ids[(0,) * n]
        self._coo: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._dense: np.ndarray | None = None
        self._levels: tuple[tuple[int, int], ...] | None = None
        #: Masks for content-keyed tasks (CountTask and friends): chains
        #: are process-immortal via the memo, so identity keys would pin
        #: every freshly-constructed task forever.  Tasks without a
        #: content key fall back to a weak identity map.
        self._mask_cache: dict[tuple, tuple[bool, ...]] = {}
        self._weak_masks: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._partitions: list | None = None
        self._exact_weights: tuple | None = None
        #: Exact distributions by time; [0] is the point mass on start.
        self._dist_exact: list[dict[int, Fraction]] = [
            {self.start: Fraction(1)}
        ]

    # -- pickling: drop per-process caches (task masks key on identity) --
    def __getstate__(self):
        return {
            "key": self.key,
            "n": self.n,
            "k": self.k,
            "labels": self.labels,
            "_out": self.out_table(),
        }

    def __setstate__(self, state):
        self.__init__(
            state["key"], state["n"], state["k"],
            state["labels"], state["_out"],
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.labels)

    @property
    def num_transitions(self) -> int:
        if self._out is not None:
            return sum(len(edges) for edges in self._out)
        return int(len(self._csr[1]))

    def state_id(self, labels: LabelVector) -> int | None:
        """Dense id of a label vector (``None`` if unreachable)."""
        return self._ids.get(labels)

    def out_table(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Per-state ``(dst, count)`` tuples (materialized from CSR if
        the chain was attached from shared memory)."""
        if self._out is None:
            indptr, dst, cnt = self._csr
            self._out = tuple(
                tuple(
                    (int(dst[e]), int(cnt[e]))
                    for e in range(int(indptr[sid]), int(indptr[sid + 1]))
                )
                for sid in range(self.num_states)
            )
        return self._out

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Transitions as flat int64 CSR arrays ``(indptr, dst, cnt)``.

        State ``sid``'s edges are ``dst[indptr[sid]:indptr[sid+1]]`` with
        integer counts ``cnt[...]`` out of :attr:`denom`.  This is the
        layout the shared-memory store publishes; chains attached from a
        segment return zero-copy views here.
        """
        if self._csr is None:
            out = self._out
            indptr = np.zeros(self.num_states + 1, dtype=np.int64)
            for sid, edges in enumerate(out):
                indptr[sid + 1] = indptr[sid] + len(edges)
            dst = np.fromiter(
                (d for edges in out for d, _ in edges),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            cnt = np.fromiter(
                (c for edges in out for _, c in edges),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            self._csr = (indptr, dst, cnt)
        return self._csr

    def levels(self) -> tuple[tuple[int, int], ...]:
        """``(start, stop)`` id ranges of equal block count, ascending.

        States are topologically sorted by block count, so refinement
        edges only ever leave a level for a strictly later one (or
        self-loop); the vectorized float kernels sweep these ranges in
        reverse instead of looping state by state.
        """
        if self._levels is None:
            ranges = []
            start = 0
            for sid in range(1, self.num_states + 1):
                if (
                    sid == self.num_states
                    or self.block_counts[sid] != self.block_counts[start]
                ):
                    ranges.append((start, sid))
                    start = sid
            self._levels = tuple(ranges)
        return self._levels

    def out_edges(self, sid: int) -> tuple[tuple[int, int], ...]:
        """``(dst, count)`` pairs; weights are ``count / denom``."""
        return self.out_table()[sid]

    def exact_out_edges(self, sid: int) -> tuple[tuple[int, Fraction], ...]:
        """``(dst, weight)`` pairs with pre-built exact ``Fraction`` weights."""
        if self._exact_weights is None:
            self._exact_weights = tuple(
                tuple(
                    (dst, Fraction(cnt, self.denom)) for dst, cnt in edges
                )
                for edges in self.out_table()
            )
        return self._exact_weights[sid]

    def transitions_exact(self, sid: int) -> dict[int, Fraction]:
        """Next-state distribution from ``sid`` as exact Fractions."""
        return dict(self.exact_out_edges(sid))

    def cached_distribution_exact(self, t: int) -> dict[int, Fraction]:
        """The exact distribution at time ``t``, stepped at most once ever.

        Task-independent and therefore shared by every query against
        this chain; callers must treat the returned dict as read-only
        (the public :meth:`state_distribution` hands out copies).

        The cache holds at most :attr:`distribution_cache_cap` entries
        (see :func:`set_distribution_cache_cap`): deeper horizons step
        transiently from the last cached entry, so deep queries on large
        state spaces stay exact without growing memory without bound.
        """
        cache = self._dist_exact
        if t < len(cache):
            return cache[t]
        cap = self.distribution_cache_cap
        while len(cache) <= t and len(cache) < cap:
            cache.append(step_exact(self, cache[-1]))
        if t < len(cache):
            return cache[t]
        dist = cache[-1]
        for _ in range(t - len(cache) + 1):
            dist = step_exact(self, dist)
        return dist

    def partition_of(self, sid: int):
        """State ``sid`` as the facade's canonical ``PartitionState``."""
        if self._partitions is None:
            self._partitions = [None] * self.num_states
        cached = self._partitions[sid]
        if cached is None:
            cached = self._partitions[sid] = blocks_from_labels(
                self.labels[sid]
            )
        return cached

    def coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat ``(src, dst, weight)`` arrays derived from :meth:`csr`
        (``src``/``dst`` int64, ``weight`` float64; built lazily)."""
        if self._coo is None:
            indptr, dst, cnt = self.csr()
            src = np.repeat(
                np.arange(self.num_states, dtype=np.int64),
                np.diff(indptr),
            )
            self._coo = (
                src,
                np.asarray(dst, dtype=np.int64),
                np.asarray(cnt, dtype=np.float64) / self.denom,
            )
        return self._coo

    def dense_transition_matrix(self) -> "np.ndarray | None":
        """Dense ``(S, S)`` float64 transition matrix, or ``None``.

        Only chains with at most :data:`DENSE_STATE_LIMIT` states keep
        one (chains are process-immortal via the memo, so the cached
        matrix must stay small); the batched float path falls back to
        sparse scatter-adds above the limit.
        """
        if self.num_states > DENSE_STATE_LIMIT:
            return None
        if self._dense is None:
            src, dst, weight = self.coo()
            dense = np.zeros((self.num_states, self.num_states))
            dense[src, dst] = weight
            self._dense = dense
        return self._dense

    # ------------------------------------------------------------------
    # Task solvability bitmasks
    # ------------------------------------------------------------------
    def solvable_mask(self, task) -> tuple[bool, ...]:
        """Per-state solvability, evaluated once per task into a bitmask.

        Symmetric tasks (the package contract) depend only on the
        multiset of block sizes, so the task predicate runs once per
        distinct size multiset rather than once per (state, query).
        Count-profile tasks are cached by *content* (equal tasks built
        at different call sites share one mask); other tasks by weak
        identity, so this immortal chain never pins dead task objects.
        The weak identity map doubles as a fast path for content-keyed
        tasks: a repeat query with the same task object skips the
        content-key computation entirely.
        """
        cached = self._weak_masks.get(task)
        if cached is not None:
            return cached
        key = _task_content_key(task)
        cached = self._mask_cache.get(key) if key is not None else None
        if cached is None:
            by_sizes: dict[tuple[int, ...], bool] = {}
            mask = []
            for sid, labels in enumerate(self.labels):
                sizes = block_sizes(labels)
                verdict = by_sizes.get(sizes)
                if verdict is None:
                    verdict = by_sizes[sizes] = task.solvable_from_partition(
                        [frozenset(b) for b in self.partition_of(sid)]
                    )
                mask.append(verdict)
            cached = tuple(mask)
            if key is not None:
                self._mask_cache[key] = cached
        try:
            self._weak_masks[task] = cached
        except TypeError:  # non-weakrefable task objects stay content-keyed
            pass
        return cached

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state_distribution(self, t: int, *, backend: str = "exact"):
        """Distribution over state ids after ``t`` rounds."""
        if t < 0:
            raise ValueError("need t >= 0")
        if validate_backend(backend) == "exact":
            return dict(distribution_exact(self, t))
        return distribution_float(self, t)

    def solving_probability(self, task, t: int, *, backend: str = "exact"):
        """``Pr[S(t) | alpha]`` for a symmetric task."""
        if t < 0:
            raise ValueError("need t >= 0")
        mask = self.solvable_mask(task)
        if validate_backend(backend) == "exact":
            return mass_exact(distribution_exact(self, t), mask)
        dist = distribution_float(self, t)
        return float(dist[np.asarray(mask, dtype=bool)].sum())

    def solving_probability_series(
        self, task, t_max: int, *, backend: str = "exact"
    ):
        """``[Pr[S(1)], ..., Pr[S(t_max)]]`` sharing work across times."""
        mask = self.solvable_mask(task)
        if validate_backend(backend) == "exact":
            return series_exact(self, mask, t_max)
        return series_float(self, mask, t_max)

    def absorption_probabilities(self, task, *, backend: str = "exact"):
        """Per-state probability of ever solving (indexed by state id)."""
        mask = self.solvable_mask(task)
        if validate_backend(backend) == "exact":
            return absorption_exact(self, mask)
        return absorption_float(self, mask)

    def limit_solving_probability(self, task, *, backend: str = "exact"):
        """Exact (or float) ``lim_t Pr[S(t) | alpha]``."""
        return self.absorption_probabilities(task, backend=backend)[
            self.start
        ]

    def eventually_solvable(self, task) -> bool:
        """Definition 3.3 decided exactly; asserts the zero-one law."""
        limit = self.limit_solving_probability(task)
        if limit not in (Fraction(0), Fraction(1)):
            raise AssertionError(
                f"zero-one law violated: limit {limit} for chain {self.key!r}"
            )
        return limit == 1

    def expected_times(self, task, *, backend: str = "exact"):
        """Per-state expected rounds to first solve (``None`` = infinite)."""
        mask = self.solvable_mask(task)
        if validate_backend(backend) == "exact":
            return expected_exact(self, mask)
        return expected_float(self, mask)

    def expected_solving_time(self, task, *, backend: str = "exact"):
        """Expected rounds until the partition first solves ``task``.

        ``None`` when the task is not solved almost surely from the
        initial state (the expectation is infinite).
        """
        if backend == "exact":
            if self.limit_solving_probability(task) != 1:
                return None
        return self.expected_times(task, backend=backend)[self.start]

    def solving_time_quantile(
        self, task, q, *, t_cap: int = 512, backend: str = "exact"
    ) -> int | None:
        """Smallest ``t`` with ``Pr[S(t)] >= q`` (None if not by cap)."""
        if not 0 < float(q) <= 1:
            raise ValueError("quantile must be in (0, 1]")
        mask = self.solvable_mask(task)
        if validate_backend(backend) == "exact":
            for t in range(1, t_cap + 1):
                dist = self.cached_distribution_exact(t)
                if mass_exact(dist, mask) >= q:
                    return t
            return None
        src, dst, weight = self.coo()
        mask_array = np.asarray(mask, dtype=bool)
        dist = np.zeros(self.num_states)
        dist[self.start] = 1.0
        for t in range(1, t_cap + 1):
            nxt = np.zeros(self.num_states)
            np.add.at(nxt, dst, dist[src] * weight)
            dist = nxt
            if float(dist[mask_array].sum()) >= float(q):
                return t
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledChain(n={self.n}, k={self.k}, "
            f"states={self.num_states}, transitions={self.num_transitions})"
        )


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _compile(
    key: ChainKey, alpha: RandomnessConfiguration
) -> CompiledChain:
    """Explore the reachable space once and freeze it into arrays."""
    assignment, neigh, back = key
    n, k = alpha.n, alpha.k
    table = StateTable()
    start = table.intern((0,) * n)
    transitions: list[dict[int, int]] = []
    frontier = [start]
    while frontier:
        sid = frontier.pop()
        while len(transitions) <= sid:
            transitions.append({})
        counts = transitions[sid]
        labels = table.labels_of(sid)
        # Bit vectors and their complements refine identically; fix the
        # first source's bit to halve the enumeration (the seed trick).
        for rest in itertools.product((0, 1), repeat=k - 1):
            source_bits = (0, *rest)
            node_bits = tuple(source_bits[assignment[i]] for i in range(n))
            nxt_labels = refine_labels(labels, node_bits, neigh, back)
            known = table.get(nxt_labels)
            if known is None:
                known = table.intern(nxt_labels)
                frontier.append(known)
            counts[known] = counts.get(known, 0) + 1
    # Topological reindex: ascending block count (refinement strictly
    # increases it except for self-loops), ties broken by label vector
    # for determinism.
    order = sorted(
        range(len(table)),
        key=lambda sid: (block_count(table.labels_of(sid)), table.labels_of(sid)),
    )
    renumber = {old: new for new, old in enumerate(order)}
    labels = tuple(table.labels_of(old) for old in order)
    out = tuple(
        tuple(
            sorted(
                (renumber[dst], cnt)
                for dst, cnt in transitions[old].items()
            )
        )
        for old in order
    )
    return CompiledChain(key, n, k, labels, out)


#: Process-wide memo: one compilation per structural chain, ever.
_MEMO: dict[ChainKey, CompiledChain] = {}


def clear_memo() -> None:
    """Drop all memoized compiled chains (tests, memory pressure)."""
    _MEMO.clear()


def memo_size() -> int:
    return len(_MEMO)


def memoized_chain(key: ChainKey) -> "CompiledChain | None":
    """The memoized chain for ``key``, without compiling on a miss.

    Lets callers (the sweep's shared-memory publisher) distinguish
    warm chains -- free to publish -- from cold ones that would stall
    the parent process if compiled eagerly.
    """
    return _MEMO.get(key)


def _build_chain(key: ChainKey, alpha: RandomnessConfiguration) -> CompiledChain:
    """Compile ``key`` -- full or quotient, as the key's tag says."""
    from . import quotient as quotient_backend

    if not quotient_backend.is_quotient_key(key):
        return _compile(key, alpha)
    chain = quotient_backend.compile_quotient(key, alpha)
    if OBS.enabled:
        OBS.metrics.inc("chain.compile.quotient")
        OBS.metrics.observe("chain.quotient.orbits", chain.num_states)
        OBS.metrics.observe("chain.quotient.full_states", chain.full_states)
        OBS.metrics.observe(
            "chain.quotient.reduction",
            chain.full_states // chain.num_states,
        )
    return chain


def compile_chain(
    alpha: RandomnessConfiguration,
    ports=None,
    *,
    include_back_ports: bool = False,
    use_memo: bool = True,
    quotient=None,
) -> CompiledChain:
    """The compiled chain of ``(alpha, ports)``, memoized process-wide.

    ``ports=None`` selects the blackboard model; a
    :class:`~repro.models.ports.PortAssignment` or
    :class:`~repro.models.graph.GraphTopology` selects message passing.
    With a disk cache configured (:func:`repro.chain.cache.configure_disk_cache`)
    compilations persist across worker processes and runs.

    ``quotient`` selects the symmetry-quotient backend
    (:mod:`repro.chain.quotient`): ``True``/``"on"`` folds states into
    automorphism orbits, ``False``/``"off"`` compiles the full chain,
    ``"auto"`` folds exactly when a nontrivial automorphism exists, and
    ``None`` (the default) defers to the process-wide mode set by
    :func:`~repro.chain.quotient.configure_quotient`.  Quotient
    compilations carry a tagged key, so the memo, disk cache, and
    shared-memory store keep the two backends separate automatically.
    """
    if alpha.n > MAX_NODES:
        raise ValueError(
            f"exact chain supports n <= {MAX_NODES}, got {alpha.n}"
        )
    if ports is not None and ports.n != alpha.n:
        raise ValueError("port assignment size does not match alpha")
    if ports is None and include_back_ports:
        raise ValueError("back ports are meaningless on a blackboard")
    from . import quotient as quotient_backend

    key = chain_key(alpha, ports, include_back_ports=include_back_ports)
    if quotient_backend.resolve_quotient(key, quotient):
        key = quotient_backend.quotient_key(key)
    if not use_memo:
        # One-shot chains (exhaustive port enumerations) skip BOTH the
        # memo and the disk cache: each is queried once and never again,
        # so persisting them would only flood the cache directory.
        if OBS.enabled:
            OBS.metrics.inc("chain.compile.unmemoized")
            with trace("chain.compile", n=alpha.n, memo=False):
                return _build_chain(key, alpha)
        return _build_chain(key, alpha)
    hit = _MEMO.get(key)
    if hit is not None:
        if OBS.enabled:
            OBS.metrics.inc("chain.compile.hit.memo")
        return hit
    from .shm import shared_chain

    attached = shared_chain(key)
    if attached is not None:
        # Shared memory beats the disk cache: attaching is a zero-copy
        # mapping of arrays another process already built, so pool
        # workers skip the per-process pickle load entirely.
        if OBS.enabled:
            OBS.metrics.inc("chain.compile.hit.shm")
        _MEMO[key] = attached
        return attached
    from .cache import disk_cache

    store = disk_cache()
    if store is not None:
        cached = store.load(key)
        if cached is not None:
            if OBS.enabled:
                OBS.metrics.inc("chain.compile.hit.disk")
            _MEMO[key] = cached
            return cached
    if OBS.enabled:
        OBS.metrics.inc("chain.compile.miss")
        with trace("chain.compile", n=alpha.n):
            chain = _build_chain(key, alpha)
        OBS.metrics.observe("chain.compile.states", chain.num_states)
    else:
        chain = _build_chain(key, alpha)
    _MEMO[key] = chain
    if store is not None:
        store.store(chain)
    return chain


__all__ = [
    "ChainKey",
    "CompiledChain",
    "DEFAULT_DISTRIBUTION_CACHE_CAP",
    "DENSE_STATE_LIMIT",
    "MAX_NODES",
    "back_port_tables",
    "chain_key",
    "clear_memo",
    "compile_chain",
    "memo_size",
    "memoized_chain",
    "neighbour_tables",
    "refine_labels",
    "set_distribution_cache_cap",
]
