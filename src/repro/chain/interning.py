"""State interning: canonical partitions as dense integer label vectors.

The seed implementation represented a consistency partition as a sorted
tuple of sorted node tuples and re-canonicalized it (allocating dozens of
small tuples) on every refinement step.  The compiled engine instead
works on *label vectors* in restricted-growth form: ``labels[i]`` is the
block index of node ``i``, with block indices assigned in order of first
appearance.  Restricted-growth strings are in bijection with set
partitions, so the label vector IS the canonical form -- no sorting, no
nested tuples, and hash-consing a partition is one dict lookup on a flat
``tuple[int, ...]``.

:class:`StateTable` is the hash-consing table: it assigns dense integer
ids to label vectors, so the rest of the engine can store transitions as
flat integer arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: A canonical label vector: ``labels[i]`` is node ``i``'s block index,
#: blocks numbered in order of first appearance (restricted growth).
LabelVector = tuple[int, ...]


def canonical_labels(raw: Sequence[int]) -> LabelVector:
    """Renumber an arbitrary per-node key/label vector into RGS form.

    Two vectors canonicalize identically iff they induce the same
    partition (the same equality pattern), which is exactly the
    consistency semantics: only *which nodes share* matters.
    """
    relabel: dict[int, int] = {}
    out = []
    for value in raw:
        index = relabel.get(value)
        if index is None:
            index = relabel[value] = len(relabel)
        out.append(index)
    return tuple(out)


def labels_from_blocks(blocks: Iterable[Iterable[int]]) -> LabelVector:
    """Label vector of a partition given as blocks of node indices."""
    assigned: dict[int, int] = {}
    for index, block in enumerate(blocks):
        for node in block:
            assigned[node] = index
    raw = [assigned[node] for node in range(len(assigned))]
    return canonical_labels(raw)


def blocks_from_labels(labels: LabelVector) -> tuple[tuple[int, ...], ...]:
    """The partition as the seed's canonical state: sorted tuple of
    sorted node tuples (see :data:`repro.core.markov.PartitionState`)."""
    count = max(labels) + 1 if labels else 0
    blocks: list[list[int]] = [[] for _ in range(count)]
    for node, label in enumerate(labels):
        blocks[label].append(node)
    return tuple(sorted(tuple(block) for block in blocks))


def block_count(labels: LabelVector) -> int:
    """Number of blocks (``max + 1`` in restricted-growth form)."""
    return max(labels) + 1 if labels else 0


def block_sizes(labels: LabelVector) -> tuple[int, ...]:
    """Sorted multiset of block sizes -- all a symmetric task looks at."""
    counts = [0] * block_count(labels)
    for label in labels:
        counts[label] += 1
    return tuple(sorted(counts))


class StateTable:
    """Hash-consing table from label vectors to dense integer ids."""

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        self._ids: dict[LabelVector, int] = {}
        self._labels: list[LabelVector] = []

    def intern(self, labels: LabelVector) -> int:
        """The id of ``labels``, assigning the next dense id if new."""
        sid = self._ids.get(labels)
        if sid is None:
            sid = self._ids[labels] = len(self._labels)
            self._labels.append(labels)
        return sid

    def get(self, labels: LabelVector) -> int | None:
        return self._ids.get(labels)

    def labels_of(self, sid: int) -> LabelVector:
        return self._labels[sid]

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self):
        return iter(self._labels)


__all__ = [
    "LabelVector",
    "StateTable",
    "block_count",
    "block_sizes",
    "blocks_from_labels",
    "canonical_labels",
    "labels_from_blocks",
]
