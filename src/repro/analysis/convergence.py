"""Convergence-rate analysis of the solving probability.

The paper's blackboard bound ``Pr[S(t)] >= 1 - (k-1)/2^t`` suggests the
failure probability decays geometrically with ratio 1/2 (each extra round
halves the chance that some colliding source pair is still colliding).
This module measures the decay exactly and by regression:

* :func:`exact_tail_ratio` -- the ratio ``(1 - Pr[S(t+1)]) / (1 - Pr[S(t)])``
  from the chain's exact series at a large horizon (a rational number);
* :func:`fitted_decay_rate` -- a least-squares fit of
  ``log(1 - Pr[S(t)])`` against ``t`` (numpy), as an experimentalist would
  estimate it from data.

Both must agree with each other, and for blackboard configurations with a
unique source they must equal exactly 1/2.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

import numpy as np

from ..core.leader_election import leader_election
from ..chain import CompiledChain, compile_chain
from ..models.ports import adversarial_assignment
from ..randomness.configuration import RandomnessConfiguration
from .result import ExperimentResult


def fitted_decay_rate(
    series: Sequence[Fraction | float], *, skip: int = 0
) -> float:
    """Least-squares geometric decay rate of ``1 - p_t``.

    Fits ``log(1 - p_t) = a + t log(r)`` over the entries with ``p_t < 1``
    and returns ``r``.  ``skip`` drops the first rounds, whose transient is
    not yet geometric.  Raises when fewer than two usable points exist.
    """
    points = [
        (t, math.log(1 - float(p)))
        for t, p in enumerate(series, start=1)
        if float(p) < 1.0 and t > skip
    ]
    if len(points) < 2:
        raise ValueError("need at least two sub-1 probabilities to fit")
    ts = np.array([t for t, _ in points], dtype=float)
    logs = np.array([v for _, v in points], dtype=float)
    slope, _ = np.polyfit(ts, logs, 1)
    return float(math.exp(slope))


def exact_tail_ratio(
    chain: "CompiledChain | object",
    task,
    *,
    horizon: int = 24,
) -> Fraction | None:
    """``(1 - Pr[S(horizon)]) / (1 - Pr[S(horizon - 1)])``, exactly.

    ``None`` when the failure probability is already 0 (solved surely in
    finite time) or identically 1 (never solvable).
    """
    series = chain.solving_probability_series(task, horizon)
    prev_fail = 1 - series[-2]
    fail = 1 - series[-1]
    if prev_fail == 0 or series[-1] == 0:
        return None
    return fail / prev_fail


def convergence_rates(horizon: int = 20) -> ExperimentResult:
    """Measured decay rates vs the implied 1/2 (blackboard, n_1 = 1)."""
    rows = []
    passed = True
    for sizes in ((1, 2), (1, 2, 2), (1, 2, 2, 2), (1, 3)):
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        task = leader_election(alpha.n)
        chain = compile_chain(alpha)
        series = chain.solving_probability_series(task, horizon)
        fit = fitted_decay_rate(series, skip=horizon // 2)
        ratio = exact_tail_ratio(chain, task, horizon=horizon)
        assert ratio is not None
        # With several pair sources the exact ratio is 1/2 (1 + O(2^-t)):
        # demand convergence at the horizon's scale, not exact equality.
        ok = (
            abs(fit - 0.5) < 0.02
            and abs(float(ratio) - 0.5) < 2.0 ** -(horizon - 8)
        )
        passed &= ok
        rows.append(
            (
                "blackboard",
                sizes,
                f"{fit:.5f}",
                f"{float(ratio):.5f}",
                "1/2",
                "ok" if ok else "MISMATCH",
            )
        )

    # Clique with adversarial ports: rates are also geometric; report the
    # exact tail ratio and require fit/ratio agreement (no closed form
    # claimed by the paper).
    for sizes in ((2, 3), (1, 2)):
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        task = leader_election(alpha.n)
        chain = compile_chain(alpha, adversarial_assignment(sizes))
        series = chain.solving_probability_series(task, horizon)
        ratio = exact_tail_ratio(chain, task, horizon=horizon)
        if ratio is None:
            rows.append(("clique (adv)", sizes, "-", "exact 0 tail", "-", "ok"))
            continue
        fit = fitted_decay_rate(series, skip=horizon // 2)
        ok = abs(fit - float(ratio)) < 0.05
        passed &= ok
        rows.append(
            (
                "clique (adv)",
                sizes,
                f"{fit:.5f}",
                f"{float(ratio):.5f}",
                "(geometric)",
                "ok" if ok else "MISMATCH",
            )
        )
    return ExperimentResult(
        experiment_id="extension-convergence-rate",
        title="Geometric decay of the failure probability",
        headers=(
            "model",
            "sizes",
            "fitted rate",
            "exact tail ratio",
            "theory",
            "check",
        ),
        rows=rows,
        notes=[
            "blackboard with a unique source: failure halves each round, "
            "exactly, matching the 1-(k-1)/2^t bound's rate",
        ],
        passed=passed,
    )


__all__ = ["convergence_rates", "exact_tail_ratio", "fitted_decay_rate"]
