"""Monte-Carlo estimation with confidence intervals.

The exact engines cover every configuration the paper discusses; this
module exists for the regime beyond them (large ``n`` or ``t`` where the
partition chain's state space would blow up).  It wraps the sampling
estimator with Wilson score intervals and an adaptive loop that samples
until the interval is narrow enough, and provides an agreement check
against the exact value used by the test suite to validate the sampler.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.probability import solving_probability_sampled
from ..core.tasks import SymmetryBreakingTask
from ..models.ports import PortAssignment
from ..randomness.configuration import RandomnessConfiguration


@dataclass(frozen=True)
class Estimate:
    """A binomial estimate with its Wilson confidence interval."""

    probability: float
    low: float
    high: float
    samples: int
    confidence: float

    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def wilson_interval(
    successes: int, samples: int, confidence: float = 0.95
) -> tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because solving probabilities
    sit near 0 or 1 for most configurations (the zero-one law pushes them
    to the boundary), where the naive interval misbehaves.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    z = _normal_quantile(0.5 + confidence / 2)
    phat = successes / samples
    denom = 1 + z * z / samples
    centre = (phat + z * z / (2 * samples)) / denom
    margin = (
        z
        * math.sqrt(
            phat * (1 - phat) / samples + z * z / (4 * samples * samples)
        )
        / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e00, -2.549732539343734e00,
         4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e00, 3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def estimate_solving_probability(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    samples: int = 2000,
    confidence: float = 0.95,
    seed: int | None = 0,
) -> Estimate:
    """One-shot Monte-Carlo estimate with a Wilson interval."""
    phat = solving_probability_sampled(
        alpha, task, t, ports, samples=samples, seed=seed
    )
    successes = round(phat * samples)
    low, high = wilson_interval(successes, samples, confidence)
    return Estimate(phat, low, high, samples, confidence)


def adaptive_estimate(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    target_width: float = 0.05,
    confidence: float = 0.95,
    batch: int = 500,
    max_samples: int = 20000,
    seed: int | None = 0,
) -> Estimate:
    """Sample in batches until the Wilson interval is narrow enough."""
    if target_width <= 0:
        raise ValueError("target_width must be positive")
    rng = random.Random(seed)
    from ..core.probability import model_for
    from ..core.solvability import realization_solves

    model = model_for(alpha, ports)
    successes = 0
    samples = 0
    while samples < max_samples:
        for _ in range(batch):
            source_bits = [
                tuple(rng.getrandbits(1) for _ in range(t))
                for _ in range(alpha.k)
            ]
            realization = tuple(
                source_bits[alpha.source_of(i)] for i in range(alpha.n)
            )
            if realization_solves(model, realization, task):
                successes += 1
        samples += batch
        low, high = wilson_interval(successes, samples, confidence)
        if high - low <= target_width:
            break
    low, high = wilson_interval(successes, samples, confidence)
    return Estimate(successes / samples, low, high, samples, confidence)


def parallel_estimate(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    samples: int = 2000,
    batches: int = 8,
    confidence: float = 0.95,
    seed: int = 0,
    engine=None,
) -> Estimate:
    """Monte-Carlo estimate with batches fanned out over a runner engine.

    The sample budget splits into ``batches`` batches; each batch gets a
    private seed derived from ``(seed, batch index)`` via the runner's
    stream-splitting scheme, so the summed estimate is identical for a
    serial engine and a process pool of any width.  With ``engine=None``
    the batches run in-process (useful for testing the decomposition).
    """
    if samples < 1:
        raise ValueError("need samples >= 1")
    if not 1 <= batches <= samples:
        raise ValueError("need 1 <= batches <= samples")
    from ..runner.engines import SerialEngine
    from ..runner.spec import derive_seed
    from ..runner.worker import chain_context_payload, execute_sample_batch

    engine = engine or SerialEngine()
    base, extra = divmod(samples, batches)
    context = chain_context_payload()
    payloads = [
        {
            "alpha": alpha,
            "task": task,
            "ports": ports,
            "t": t,
            "samples": base + (1 if index < extra else 0),
            "seed": derive_seed(seed, f"mc-batch={index}"),
            **context,
        }
        for index in range(batches)
    ]
    successes = sum(
        record["successes"]
        for record in engine.map(execute_sample_batch, payloads)
    )
    low, high = wilson_interval(successes, samples, confidence)
    return Estimate(successes / samples, low, high, samples, confidence)


__all__ = [
    "Estimate",
    "adaptive_estimate",
    "estimate_solving_probability",
    "parallel_estimate",
    "wilson_interval",
]
