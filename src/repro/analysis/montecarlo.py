"""Monte-Carlo estimation with confidence intervals.

The exact engines cover every configuration the paper discusses; this
module exists for the regime beyond them (large ``n`` or ``t`` where the
partition chain's state space would blow up).  It wraps the vectorized
substream sampler (:mod:`repro.sampling`) with Wilson score intervals
and an adaptive loop that samples until the interval is narrow enough,
and provides an agreement check against the exact value used by the test
suite to validate the sampler.

All estimators here consume the kernel's counter-based substreams, so
their integer success counts are pure functions of ``(seed, cell)``:
independent of batching, engines, worker counts -- and mergeable with
memoized cells from previous runs.  The interval statistics themselves
(``wilson_interval`` and the inverse-normal quantile) live in
:mod:`repro.sampling.stats`; they are re-exported here for their
historical import path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.tasks import SymmetryBreakingTask
from ..models.ports import PortAssignment
from ..randomness.configuration import RandomnessConfiguration
from ..sampling import MCEstimate, sample_cell
from ..sampling.stats import normal_quantile as _normal_quantile
from ..sampling.stats import wilson_interval


@dataclass(frozen=True)
class Estimate:
    """A binomial estimate with its Wilson confidence interval.

    ``successes`` carries the integer count the estimate was formed
    from (appended with a default so positional construction predating
    the field keeps working); estimators always populate it, so callers
    never re-derive the count from the float.
    """

    probability: float
    low: float
    high: float
    samples: int
    confidence: float
    successes: "int | None" = None

    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _as_estimate(mc: MCEstimate, confidence: float) -> Estimate:
    low, high = mc.interval(confidence)
    return Estimate(
        mc.probability, low, high, mc.samples, confidence, mc.successes
    )


def _stream_seed(seed: "int | None") -> int:
    return int.from_bytes(os.urandom(8), "big") >> 1 if seed is None else seed


def estimate_solving_probability(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    samples: int = 2000,
    confidence: float = 0.95,
    seed: int | None = 0,
    method: str = "auto",
) -> Estimate:
    """One-shot Monte-Carlo estimate with a Wilson interval."""
    mc = sample_cell(
        alpha, task, t, ports,
        stream_seed=_stream_seed(seed), samples=samples, method=method,
    )
    return _as_estimate(mc, confidence)


def adaptive_estimate(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    target_width: float = 0.05,
    confidence: float = 0.95,
    batch: int = 500,
    max_samples: int = 20000,
    seed: int | None = 0,
    method: str = "auto",
) -> Estimate:
    """Sample in batches until the Wilson interval is narrow enough.

    Each batch extends the *same* substream, so stopping after ``m``
    samples yields exactly the ``m``-sample one-shot estimate --
    adaptivity decides when to stop, never what is measured.
    """
    if target_width <= 0:
        raise ValueError("target_width must be positive")
    from ..sampling import adaptive_cell_estimate

    mc = adaptive_cell_estimate(
        alpha, task, t, ports,
        stream_seed=_stream_seed(seed),
        target_width=target_width,
        confidence=confidence,
        initial=batch,
        increment=batch,
        max_samples=max_samples,
        method=method,
    )
    return _as_estimate(mc, confidence)


def parallel_estimate(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    samples: int = 2000,
    batches: int = 8,
    confidence: float = 0.95,
    seed: int = 0,
    engine=None,
) -> Estimate:
    """Monte-Carlo estimate with batches fanned out over a runner engine.

    The sample budget splits into ``batches`` contiguous ranges of one
    shared substream; each worker evaluates its range as a pure function
    of ``(seed, range)``, so the summed count is identical for a serial
    engine, a process pool of any width, *and any batch count* -- the
    decomposition is an implementation detail, not part of the estimate's
    identity.  With ``engine=None`` the batches run in-process.
    """
    if samples < 1:
        raise ValueError("need samples >= 1")
    if not 1 <= batches <= samples:
        raise ValueError("need 1 <= batches <= samples")
    from ..runner.engines import SerialEngine
    from ..runner.worker import chain_context_payload, execute_sample_batch

    engine = engine or SerialEngine()
    base, extra = divmod(samples, batches)
    context = chain_context_payload()
    bounds = [0]
    for index in range(batches):
        bounds.append(bounds[-1] + base + (1 if index < extra else 0))
    payloads = [
        {
            "alpha": alpha,
            "task": task,
            "ports": ports,
            "t": t,
            "start": bounds[index],
            "stop": bounds[index + 1],
            "seed": seed,
            **context,
        }
        for index in range(batches)
    ]
    successes = sum(
        record["successes"]
        for record in engine.map(execute_sample_batch, payloads)
    )
    return _as_estimate(MCEstimate(successes, samples), confidence)


__all__ = [
    "Estimate",
    "adaptive_estimate",
    "estimate_solving_probability",
    "parallel_estimate",
    "wilson_interval",
]
