"""Experiment harness: one generator per figure/theorem of the paper.

Each generator returns an :class:`ExperimentResult` with measurements and a
verdict against the paper's prediction.  ``run_all_experiments()`` executes
the full reproduction sweep (used by ``examples/reproduce_paper.py``); the
individual generators back one benchmark file each.
"""

from .convergence import convergence_rates, exact_tail_ratio, fitted_decay_rate
from .extensions import extension_expected_times, extension_task_zoo
from .graphs import extension_anonymous_graphs, ring_labeling_census
from .montecarlo import (
    Estimate,
    adaptive_estimate,
    estimate_solving_probability,
    parallel_estimate,
    wilson_interval,
)
from .report import (
    result_from_dict,
    result_to_csv,
    result_to_dict,
    result_to_markdown,
    results_from_json,
    results_to_json,
    write_report,
)
from .round_complexity import protocol_round_complexity
from .symmetry import (
    has_nontrivial_automorphism,
    source_preserving_automorphisms,
    symmetry_census,
)
from .worst_case_search import (
    exhaustive_worst_case,
    iter_all_port_assignments,
    worst_case_port_search,
)
from .figures import (
    figure1_protocol_complex,
    figure2_realization_complex,
    figure3_output_projection,
    figure4_solvability_equivalence,
)
from .protocols import (
    algorithm1_matching,
    euclid_protocol,
    lemma43_divisibility,
    theoremC1_reduction,
)
from .result import ExperimentResult
from .theorems import (
    extension_k_leader,
    lemma_b1_equiprobability,
    theorem41_blackboard,
    theorem41_convergence,
    theorem42_message_passing,
)

#: The full reproduction sweep, in paper order.
ALL_EXPERIMENTS = (
    figure1_protocol_complex,
    figure2_realization_complex,
    figure3_output_projection,
    figure4_solvability_equivalence,
    lemma_b1_equiprobability,
    theorem41_blackboard,
    theorem41_convergence,
    theorem42_message_passing,
    lemma43_divisibility,
    algorithm1_matching,
    euclid_protocol,
    theoremC1_reduction,
    extension_k_leader,
    extension_task_zoo,
    extension_expected_times,
    extension_anonymous_graphs,
    ring_labeling_census,
    protocol_round_complexity,
    worst_case_port_search,
    symmetry_census,
    convergence_rates,
)


#: Chains the experiment registry's generators compile over and over:
#: every theorem/extension sweep grids the size shapes of small ``n``
#: under the blackboard and the standard clique port assignments.  A
#: pooled experiment run pre-compiles these once in the parent and
#: publishes them to shared memory so each worker attaches instead of
#: recompiling its own copies (the ``run_sweep`` treatment, extended to
#: ``execute_experiment`` fan-outs).
SHARED_EXPERIMENT_N_MAX = 5


def _publish_experiment_chains():
    """Publish the registry's overlapping chains; a store or ``None``.

    Best-effort exactly like the sweep publisher: no usable shared
    memory degrades to ``None`` and workers compile their own chains
    (through the memo) as before.
    """
    from ..chain import compile_chain
    from ..chain.shm import SharedChainStore
    from ..models.ports import adversarial_assignment, round_robin_assignment
    from ..randomness.configuration import (
        RandomnessConfiguration,
        enumerate_size_shapes,
    )

    chains = []
    store = SharedChainStore()
    try:
        for n in range(1, SHARED_EXPERIMENT_N_MAX + 1):
            for shape in enumerate_size_shapes(n):
                alpha = RandomnessConfiguration.from_group_sizes(shape)
                chains.append(compile_chain(alpha))
                if n >= 2:
                    chains.append(
                        compile_chain(alpha, adversarial_assignment(shape))
                    )
                    chains.append(
                        compile_chain(alpha, round_robin_assignment(n))
                    )
        store.publish_group(chains)
    except OSError:
        store.close()
        return None
    if not len(store):
        store.close()
        return None
    return store


def iter_all_experiments(engine=None):
    """Yield every experiment result as it completes, in paper order.

    ``engine`` (a :class:`repro.runner.engines.ExecutionEngine`) fans the
    generators out over a worker pool; ``None`` or a serial engine runs
    them in-process exactly as before.  Yielding lazily lets callers
    (like the ``experiments`` CLI command) stream output as each
    experiment finishes instead of waiting for the whole registry.
    Pool engines that support shared chains get the registry's common
    chain set published to shared memory for the run's duration.
    """
    if engine is None or getattr(engine, "name", "serial") == "serial":
        for generator in ALL_EXPERIMENTS:
            yield generator()
        return
    from ..runner.worker import chain_context_payload, execute_experiment

    # The parent's chain context (e.g. --no-batch) travels with every
    # pool payload (results are identical either way).
    context = chain_context_payload()
    payloads = [
        {"index": i, **context} for i in range(len(ALL_EXPERIMENTS))
    ]
    store = None
    if getattr(engine, "supports_shared_chains", False):
        store = _publish_experiment_chains()
        if store is not None:
            manifest = store.manifest
            for payload in payloads:
                payload["chain_shm"] = manifest
    try:
        for record in engine.map(execute_experiment, payloads):
            # Fold the worker's traced spans/counters into this process
            # before handing the live result on (the sweep orchestrator
            # treatment, closing the experiment-path telemetry gap).
            telemetry = record.pop("telemetry", None)
            if telemetry is not None:
                from ..obs import merge_telemetry

                merge_telemetry(telemetry)
            yield record["result"]
    finally:
        if store is not None:
            store.close()


def run_all_experiments(engine=None) -> list[ExperimentResult]:
    """Run every experiment with default parameters, in paper order.

    Materialized form of :func:`iter_all_experiments`.
    """
    return list(iter_all_experiments(engine))


__all__ = [
    "ALL_EXPERIMENTS",
    "Estimate",
    "ExperimentResult",
    "adaptive_estimate",
    "estimate_solving_probability",
    "parallel_estimate",
    "protocol_round_complexity",
    "result_from_dict",
    "result_to_csv",
    "result_to_dict",
    "result_to_markdown",
    "results_from_json",
    "results_to_json",
    "wilson_interval",
    "write_report",
    "exhaustive_worst_case",
    "has_nontrivial_automorphism",
    "iter_all_port_assignments",
    "source_preserving_automorphisms",
    "symmetry_census",
    "worst_case_port_search",
    "algorithm1_matching",
    "convergence_rates",
    "euclid_protocol",
    "exact_tail_ratio",
    "fitted_decay_rate",
    "extension_anonymous_graphs",
    "extension_expected_times",
    "extension_k_leader",
    "extension_task_zoo",
    "figure1_protocol_complex",
    "ring_labeling_census",
    "figure2_realization_complex",
    "figure3_output_projection",
    "figure4_solvability_equivalence",
    "iter_all_experiments",
    "lemma43_divisibility",
    "lemma_b1_equiprobability",
    "run_all_experiments",
    "theoremC1_reduction",
    "theorem41_blackboard",
    "theorem41_convergence",
    "theorem42_message_passing",
]
