"""Uniform container for reproduction experiments.

Every figure/theorem of the paper has one generator function in this
package that returns an :class:`ExperimentResult`: a table of measurements
together with a pass/fail verdict against the paper's prediction.  The
benchmark harness prints these tables; ``EXPERIMENTS.md`` records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..viz.ascii import format_table


@dataclass
class ExperimentResult:
    """One reproduced experiment: measurements plus verdict."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    notes: list[str] = field(default_factory=list)
    #: True when every measured outcome matched the paper's prediction.
    passed: bool = True

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        lines.append(f"  verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)

    def require_pass(self) -> "ExperimentResult":
        """Raise when the reproduction diverged from the paper."""
        if not self.passed:
            raise AssertionError(self.render())
        return self


__all__ = ["ExperimentResult"]
