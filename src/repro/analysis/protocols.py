"""Protocol-level experiments: Lemma 4.3, Algorithm 1, Euclid runs, C.1.

Where :mod:`repro.analysis.theorems` validates the *characterizations*,
these experiments validate the *mechanisms*: the adversarial port
construction's divisibility invariant, the matching procedure's
guarantees, the Euclid-style election's liveness/safety, and the reduction
of name-independent tasks to leader election.
"""

from __future__ import annotations

import math

from ..algorithms.blackboard_leader import BlackboardLeaderNode
from ..algorithms.euclid_leader import EuclidLeaderNode
from ..algorithms.matching import (
    OBSERVER,
    V1,
    V2,
    CreateMatchingNode,
    matching_summary,
)
from ..algorithms.network import BlackboardNetwork, CliqueNetwork
from ..algorithms.reductions import (
    consensus_on_max,
    is_name_independent,
    solve_name_independent_task,
)
from ..models.message_passing import MessagePassingModel
from ..models.ports import adversarial_assignment, random_assignment
from ..randomness.configuration import (
    RandomnessConfiguration,
    enumerate_size_shapes,
)
from ..randomness.realizations import iter_consistent_realizations
from .result import ExperimentResult


def lemma43_divisibility(
    shapes: tuple[tuple[int, ...], ...] = ((2, 2), (2, 4), (3, 3), (2, 2, 2), (4, 2)),
    t: int = 2,
) -> ExperimentResult:
    """Lemma 4.3: under the adversarial ports, ``g | dim(gamma) + 1``.

    Exhaustively enumerates the positive-probability realizations at time
    ``t`` and checks every knowledge class has size divisible by ``g``.
    """
    rows = []
    passed = True
    for shape in shapes:
        g = math.gcd(*shape)
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        model = MessagePassingModel(adversarial_assignment(shape))
        checked = 0
        violations = 0
        for rho in iter_consistent_realizations(alpha, t):
            for block in model.partition(rho):
                checked += 1
                if len(block) % g:
                    violations += 1
        ok = violations == 0
        passed &= ok
        rows.append((shape, g, t, checked, violations, "ok" if ok else "VIOLATED"))
    return ExperimentResult(
        experiment_id="lemma-4.3",
        title="Adversarial ports: every knowledge class size divisible by g",
        headers=("sizes", "g", "t", "classes checked", "violations", "check"),
        rows=rows,
        passed=passed,
    )


def algorithm1_matching(
    pairs: tuple[tuple[int, int], ...] = ((1, 2), (2, 3), (2, 5), (3, 4), (4, 4)),
    seeds: tuple[int, ...] = (0, 1, 2),
    observers: int = 1,
) -> ExperimentResult:
    """Algorithm 1 / Lemma 4.8: all of ``V1`` matched within |V1| iterations.

    Runs the literal CreateMatching protocol with injected roles on an
    independent-randomness clique with random ports.
    """
    rows = []
    passed = True
    for n1, n2 in pairs:
        n = n1 + n2 + observers
        for seed in seeds:
            alpha = RandomnessConfiguration.independent(n)
            roles = [V1] * n1 + [V2] * n2 + [OBSERVER] * observers
            role_iter = iter(roles)
            network = CliqueNetwork(
                alpha,
                random_assignment(n, seed + 100),
                lambda: CreateMatchingNode(next(role_iter)),
                seed=seed,
            )
            result = network.run(max_rounds=3 * (n1 + 2))
            summary = matching_summary(result.outputs)
            ok = (
                summary["matched"] == 2 * n1
                and summary["unmatched"] == n2 - n1
                and summary["iterations"] <= n1
                and summary["undecided"] == 0
            )
            passed &= ok
            rows.append(
                (
                    n1,
                    n2,
                    seed,
                    summary["matched"] // 2,
                    summary["iterations"],
                    n1,
                    result.rounds,
                    "ok" if ok else "FAIL",
                )
            )
    return ExperimentResult(
        experiment_id="algorithm-1",
        title="CreateMatching matches all of V1 within |V1| iterations",
        headers=(
            "|V1|",
            "|V2|",
            "seed",
            "pairs matched",
            "iterations",
            "bound",
            "rounds",
            "check",
        ),
        rows=rows,
        passed=passed,
    )


def euclid_protocol(
    n_max: int = 6,
    seeds: tuple[int, ...] = (0, 1, 2),
    max_rounds: int = 96,
) -> ExperimentResult:
    """Theorem 4.2 algorithmically: the Euclid election elects exactly one
    leader for every gcd=1 shape under adversarial ports, and never elects
    under adversarial ports when gcd > 1."""
    rows = []
    passed = True
    for n in range(2, n_max + 1):
        for shape in enumerate_size_shapes(n):
            g = math.gcd(*shape)
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            ports = adversarial_assignment(shape)
            elected = 0
            wrong = 0
            rounds = []
            for seed in seeds:
                network = CliqueNetwork(
                    alpha, ports, EuclidLeaderNode, seed=seed
                )
                result = network.run(max_rounds=max_rounds)
                if result.all_decided:
                    if len(result.leaders()) == 1:
                        elected += 1
                        rounds.append(result.rounds)
                    else:
                        wrong += 1
                elif any(out is not None for out in result.outputs):
                    wrong += 1
            if g == 1:
                ok = elected == len(seeds) and wrong == 0
            else:
                ok = elected == 0 and wrong == 0
            passed &= ok
            rows.append(
                (
                    n,
                    shape,
                    g,
                    f"{elected}/{len(seeds)}",
                    max(rounds) if rounds else "-",
                    "elect" if g == 1 else "never",
                    "ok" if ok else "FAIL",
                )
            )
    return ExperimentResult(
        experiment_id="euclid-protocol",
        title="Euclid-style election under adversarial ports",
        headers=("n", "sizes", "gcd", "elected", "max rounds", "paper", "check"),
        rows=rows,
        passed=passed,
    )


def theoremC1_reduction(seeds: tuple[int, ...] = (0, 1)) -> ExperimentResult:
    """Theorem C.1: name-independent tasks solved via leader election."""
    rows = []
    passed = True
    cases = [
        ("blackboard", (1, 2, 2), None, (3, 1, 4, 1, 5)),
        ("clique", (2, 3), "adv", (9, 2, 6, 5, 3)),
        ("clique", (1, 1, 3), "adv", (1, 2, 2, 2, 1)),
    ]
    for model_name, shape, ports_kind, inputs in cases:
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        ports = adversarial_assignment(shape) if ports_kind else None
        for seed in seeds:
            outputs, election = solve_name_independent_task(
                alpha,
                inputs,
                consensus_on_max,
                ports=ports,
                seed=seed,
            )
            ok = (
                outputs is not None
                and is_name_independent(inputs, outputs)
                and set(outputs) == {max(inputs)}
            )
            passed &= ok
            rows.append(
                (
                    model_name,
                    shape,
                    seed,
                    inputs,
                    outputs,
                    election.rounds,
                    "ok" if ok else "FAIL",
                )
            )
    return ExperimentResult(
        experiment_id="theorem-C.1",
        title="Name-independent consensus-on-max via leader election",
        headers=("model", "sizes", "seed", "inputs", "outputs", "rounds", "check"),
        rows=rows,
        passed=passed,
    )


__all__ = [
    "algorithm1_matching",
    "euclid_protocol",
    "lemma43_divisibility",
    "theoremC1_reduction",
]
