"""Reproduction of the theorem-level results (Sections 4.1, 4.2, Appendix B).

Each generator sweeps configurations, computes exact probabilities/limits
with the partition Markov chain, and compares against the paper's
closed-form characterization.  These are the paper's "evaluation": its
claims, made executable.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.characterization import (
    blackboard_k_leader_solvable,
    blackboard_solvable,
    message_passing_worst_case_k_leader_solvable,
    message_passing_worst_case_solvable,
)
from ..core.leader_election import k_leader_election, leader_election
from ..chain import Query, compile_chain, run_group_queries, run_queries
from ..core.reachability import gcd_divides_k, worst_case_k_leader_solvable
from ..core.zero_one import (
    blackboard_unique_source_linear_bound,
    blackboard_unique_source_lower_bound,
    is_monotone_non_decreasing,
)
from ..models.ports import adversarial_assignment, round_robin_assignment
from ..randomness.configuration import (
    RandomnessConfiguration,
    enumerate_size_shapes,
)
from ..randomness.realizations import (
    iter_consistent_realizations,
    realization_probability,
)
from .result import ExperimentResult


def _series_str(series: list[Fraction], digits: int = 4) -> str:
    return " ".join(f"{float(p):.{digits}f}" for p in series)


def theorem41_blackboard(n_max: int = 5, t_max: int = 6) -> ExperimentResult:
    """Theorem 4.1: blackboard LE solvable iff some ``n_i = 1``.

    For every group-size shape of every ``n <= n_max``: the exact
    ``Pr[S(t)]`` series, its exact limit, and the predicted 0/1.
    """
    configs = []
    for n in range(1, n_max + 1):
        task = leader_election(n)
        for shape in enumerate_size_shapes(n):
            configs.append(
                (n, shape, RandomnessConfiguration.from_group_sizes(shape), task)
            )
    # One grouped pass over the whole shape axis: every chain's series
    # and limit answered together (per chain, the two queries share the
    # cached distributions / absorption sweep exactly as before).
    answers = run_group_queries(
        [
            (
                compile_chain(alpha),
                [Query.series(task, t_max), Query.limit(task)],
            )
            for _, _, alpha, task in configs
        ]
    )
    rows = []
    passed = True
    for (n, shape, alpha, task), (series, limit) in zip(configs, answers):
        predicted = Fraction(1) if blackboard_solvable(alpha) else Fraction(0)
        monotone = is_monotone_non_decreasing(series)
        ok = limit == predicted and monotone and limit in (0, 1)
        passed &= ok
        rows.append(
            (
                n,
                shape,
                _series_str(series),
                float(limit),
                "yes" if predicted == 1 else "no",
                "ok" if ok else "MISMATCH",
            )
        )
    return ExperimentResult(
        experiment_id="theorem-4.1",
        title="Blackboard leader election: solvable iff exists n_i = 1",
        headers=("n", "sizes", "Pr[S(t)] t=1..", "exact limit", "paper", "check"),
        rows=rows,
        notes=["limits are exact absorption probabilities of the partition chain"],
        passed=passed,
    )


def theorem41_convergence(
    k_values: tuple[int, ...] = (2, 3, 4), t_max: int = 8
) -> ExperimentResult:
    """Section 4.1 rate: with ``n_1 = 1``,
    ``Pr[S(t)] >= ((2^t-1)/2^t)^{k-1} >= 1 - (k-1)/2^t``.

    The configuration used is ``(1, 2, 2, ...)``: one unique source plus
    ``k-1`` pair sources.
    """
    rows = []
    passed = True
    for k in k_values:
        sizes = (1,) + (2,) * (k - 1)
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        task = leader_election(alpha.n)
        series = run_queries(
            compile_chain(alpha), [Query.series(task, t_max)]
        )[0]
        for t, prob in enumerate(series, start=1):
            strong = blackboard_unique_source_lower_bound(k, t)
            linear = blackboard_unique_source_linear_bound(k, t)
            ok = prob >= strong >= linear
            passed &= ok
            rows.append(
                (
                    k,
                    t,
                    f"{float(prob):.6f}",
                    f"{float(strong):.6f}",
                    f"{float(linear):.6f}",
                    "ok" if ok else "VIOLATED",
                )
            )
    return ExperimentResult(
        experiment_id="theorem-4.1-rate",
        title="Blackboard convergence vs the paper's lower bounds (n_1=1)",
        headers=("k", "t", "exact Pr[S(t)]", "(1-2^-t)^(k-1)", "1-(k-1)/2^t", "check"),
        rows=rows,
        passed=passed,
    )


def theorem42_message_passing(
    n_max: int = 6, t_max: int = 4
) -> ExperimentResult:
    """Theorem 4.2: worst-case clique LE solvable iff ``gcd(n_i) = 1``.

    For every shape: exact limit under the Lemma 4.3 adversarial ports
    (must be 1 iff gcd = 1) and under benign round-robin ports (may be 1
    even when gcd > 1 -- footnote 5; always 1 when gcd = 1).
    """
    configs = []
    items = []
    for n in range(2, n_max + 1):
        task = leader_election(n)
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            configs.append((n, shape, alpha))
            items.append(
                (
                    compile_chain(alpha, adversarial_assignment(shape)),
                    [Query.limit(task)],
                )
            )
            items.append(
                (
                    compile_chain(alpha, round_robin_assignment(n)),
                    [Query.limit(task)],
                )
            )
    # Both port assignments of every shape answered in one grouped
    # pass: items alternate adversarial/round-robin per shape.
    answers = run_group_queries(items)
    rows = []
    passed = True
    for (n, shape, alpha), (adv_limit,), (rr_limit,) in zip(
        configs, answers[0::2], answers[1::2]
    ):
        predicted = message_passing_worst_case_solvable(alpha)
        ok = (
            (adv_limit == 1) == predicted
            and adv_limit in (0, 1)
            and rr_limit in (0, 1)
            and (not predicted or rr_limit == 1)
        )
        passed &= ok
        rows.append(
            (
                n,
                shape,
                alpha.gcd,
                float(adv_limit),
                float(rr_limit),
                "yes" if predicted else "no",
                "ok" if ok else "MISMATCH",
            )
        )
    return ExperimentResult(
        experiment_id="theorem-4.2",
        title="Message-passing worst-case leader election: solvable iff gcd = 1",
        headers=(
            "n",
            "sizes",
            "gcd",
            "limit (adversarial ports)",
            "limit (round-robin ports)",
            "paper (worst case)",
            "check",
        ),
        rows=rows,
        notes=[
            "benign ports may solve gcd>1 shapes (the adversarial limit is "
            "the worst case the theorem speaks about)",
        ],
        passed=passed,
    )


def lemma_b1_equiprobability(n_max: int = 4, t_max: int = 3) -> ExperimentResult:
    """Lemma B.1: consistent realizations are equiprobable with mass 2^-tk."""
    rows = []
    passed = True
    for n in range(1, n_max + 1):
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            for t in range(1, t_max + 1):
                probs = {
                    realization_probability(rho, alpha)
                    for rho in iter_consistent_realizations(alpha, t)
                }
                total = sum(
                    realization_probability(rho, alpha)
                    for rho in iter_consistent_realizations(alpha, t)
                )
                expected = Fraction(1, 2 ** (t * alpha.k))
                ok = probs == {expected} and total == 1
                passed &= ok
                rows.append(
                    (
                        n,
                        shape,
                        t,
                        str(expected),
                        len(probs),
                        str(total),
                        "ok" if ok else "MISMATCH",
                    )
                )
    return ExperimentResult(
        experiment_id="lemma-B.1",
        title="Equiprobability of consistent realizations (Lemma B.1)",
        headers=("n", "sizes", "t", "2^-tk", "#distinct probs", "total mass", "check"),
        rows=rows,
        passed=passed,
    )


def extension_k_leader(n_max: int = 7) -> ExperimentResult:
    """Extension: k-leader election characterizations in both models.

    Blackboard: solvable iff a sub-multiset of the ``n_i`` sums to ``k``.
    Worst-case clique: solvable iff ``gcd(n_i) | k`` -- validated against
    the matching-closure oracle and (for small n) the exact chain limits
    under adversarial ports.
    """
    rows = []
    passed = True
    for n in range(2, n_max + 1):
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            adv_limits = bb_limits = None
            if n <= 5:
                # One batch per chain across every k: all the limits
                # share one topologically-ordered pass each.
                tasks = [k_leader_election(n, k) for k in range(1, n + 1)]
                adv_limits = run_queries(
                    compile_chain(alpha, adversarial_assignment(shape)),
                    [Query.limit(t) for t in tasks],
                )
                bb_limits = run_queries(
                    compile_chain(alpha),
                    [Query.limit(t) for t in tasks],
                )
            for k in range(1, n + 1):
                bb = blackboard_k_leader_solvable(alpha, k)
                oracle = worst_case_k_leader_solvable(shape, k)
                closed = gcd_divides_k(shape, k)
                agree = oracle == closed
                chain_check = "-"
                if adv_limits is not None:
                    limit = adv_limits[k - 1]
                    bb_limit = bb_limits[k - 1]
                    agree &= (limit == 1) == oracle
                    agree &= (bb_limit == 1) == bb
                    chain_check = f"adv={float(limit):g} bb={float(bb_limit):g}"
                passed &= agree
                rows.append(
                    (
                        n,
                        shape,
                        k,
                        "yes" if bb else "no",
                        "yes" if oracle else "no",
                        "yes" if closed else "no",
                        chain_check,
                        "ok" if agree else "MISMATCH",
                    )
                )
    return ExperimentResult(
        experiment_id="extension-k-leader",
        title="k-leader election: subset-sum (blackboard) and gcd | k (clique)",
        headers=(
            "n",
            "sizes",
            "k",
            "blackboard",
            "clique oracle",
            "gcd|k",
            "chain limits",
            "check",
        ),
        rows=rows,
        notes=[
            "the Section 1.2 exercise (2-leader election) is the k=2 row: "
            "blackboard needs a sub-multiset summing to 2, the clique needs "
            "gcd in {1, 2}",
        ],
        passed=passed,
    )


def extension_k_leader_closed_form(
    alpha: RandomnessConfiguration, k: int
) -> bool:
    """Convenience re-export used by examples."""
    return message_passing_worst_case_k_leader_solvable(alpha, k)


__all__ = [
    "extension_k_leader",
    "extension_k_leader_closed_form",
    "lemma_b1_equiprobability",
    "theorem41_blackboard",
    "theorem41_convergence",
    "theorem42_message_passing",
]
