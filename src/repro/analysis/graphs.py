"""Extension experiments: anonymous networks of arbitrary structure.

The paper's conclusion names "extending the communication model to
networks with arbitrary structure" as a research direction, and its
related-work section cites the classical anchors.  These experiments run
the framework's ``k = 1`` slice (deterministic computation = port-aware
color refinement) and its randomized chain on small graphs:

* rings: no deterministic leader election in the worst case over port
  labelings (Angluin 1980), yet private randomness solves every labeling;
* ``K_{m,n}``: worst-case deterministic leader election iff
  ``gcd(m, n) = 1`` and the two nodes of ``K_{1,1}`` excepted (two fully
  symmetric nodes cannot break ties deterministically) -- the Codenotti
  et al. result quoted by the paper;
* paths and stars: solvable iff a structurally unique node exists (odd
  paths have a centre; stars a hub).
"""

from __future__ import annotations

import math

from ..core.anonymous_graphs import (
    iter_labeling_verdicts,
    randomized_worst_case_solvable,
    worst_case_deterministic_solvable,
)
from ..core.leader_election import leader_election
from ..models.graph import GraphTopology
from ..randomness.configuration import RandomnessConfiguration
from .result import ExperimentResult


def extension_anonymous_graphs() -> ExperimentResult:
    """Worst-case deterministic leader election on small graph families."""
    rows = []
    passed = True

    # Complete bipartite graphs: the Codenotti et al. condition.
    for m, n in [(1, 2), (1, 3), (1, 4), (2, 2), (2, 3), (2, 4), (3, 3)]:
        base = GraphTopology.complete_bipartite(m, n)
        got = worst_case_deterministic_solvable(
            base, leader_election(m + n), include_back_ports=True
        )
        want = math.gcd(m, n) == 1 and (m, n) != (1, 1)
        passed &= got == want
        rows.append(
            (
                f"K_{{{m},{n}}}",
                base.labeling_count(),
                "yes" if got else "no",
                "gcd=1" if want else "gcd>1",
                "ok" if got == want else "MISMATCH",
            )
        )

    # Rings: Angluin's worst-case impossibility; randomness rescues.
    for n in (3, 4, 5):
        base = GraphTopology.ring(n)
        det = worst_case_deterministic_solvable(base, leader_election(n))
        rand = randomized_worst_case_solvable(
            base, RandomnessConfiguration.independent(n), leader_election(n)
        )
        ok = (not det) and rand
        passed &= ok
        rows.append(
            (
                f"ring C_{n}",
                base.labeling_count(),
                "yes" if det else "no",
                "Angluin: no / randomized: yes",
                "ok" if ok else "MISMATCH",
            )
        )

    # Paths: odd length has a unique centre.
    for n in (2, 3, 4, 5, 6, 7):
        base = GraphTopology.path(n)
        got = worst_case_deterministic_solvable(base, leader_election(n))
        want = n % 2 == 1
        passed &= got == want
        rows.append(
            (
                f"path P_{n}",
                base.labeling_count(),
                "yes" if got else "no",
                "odd centre" if want else "even: symmetric middle",
                "ok" if got == want else "MISMATCH",
            )
        )

    # Stars: the hub is structurally unique for n >= 3.
    for n in (2, 3, 5):
        base = GraphTopology.star(n)
        got = worst_case_deterministic_solvable(base, leader_election(n))
        want = n >= 3
        passed &= got == want
        rows.append(
            (
                f"star S_{n}",
                base.labeling_count(),
                "yes" if got else "no",
                "hub unique" if want else "two symmetric nodes",
                "ok" if got == want else "MISMATCH",
            )
        )

    return ExperimentResult(
        experiment_id="extension-anonymous-graphs",
        title="Deterministic leader election on anonymous graphs (k = 1 slice)",
        headers=(
            "graph",
            "#labelings",
            "worst-case solvable",
            "classical prediction",
            "check",
        ),
        rows=rows,
        notes=[
            "deterministic = single shared source: the consistency partition "
            "evolves as port-aware color refinement and stabilizes at the "
            "coarsest equitable partition",
            "classical semantics (messages carry the sender's port) -- on "
            "the clique this switch does not change Theorem 4.2 (tested)",
            "some individual ring labelings do solve leader election "
            "deterministically (port asymmetries break rotational symmetry; "
            "cf. Boldi et al. fibrations); Angluin's impossibility is the "
            "worst case",
        ],
        passed=passed,
    )


def ring_labeling_census(n: int = 4) -> ExperimentResult:
    """How many ring labelings admit deterministic leader election?

    Quantifies the gap between the worst case (Angluin: impossible) and
    typical labelings on the anonymous ring C_n.
    """
    base = GraphTopology.ring(n)
    task = leader_election(n)
    total = 0
    solvable = 0
    for _, verdict in iter_labeling_verdicts(base, task):
        total += 1
        solvable += verdict
    passed = 0 < solvable < total  # neither all nor none
    return ExperimentResult(
        experiment_id="extension-ring-census",
        title=f"Deterministic LE across all port labelings of C_{n}",
        headers=("labelings", "solvable", "unsolvable", "check"),
        rows=[
            (
                total,
                solvable,
                total - solvable,
                "ok" if passed else "UNEXPECTED",
            )
        ],
        notes=[
            "worst case impossible (Angluin) but most labelings break the "
            "rotational symmetry",
        ],
        passed=passed,
    )


__all__ = ["extension_anonymous_graphs", "ring_labeling_census"]
