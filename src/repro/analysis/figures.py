"""Regeneration of the paper's Figures 1-4 (combinatorial content).

The figures are drawings of small complexes; what can be checked by
machine is their combinatorics: vertex/facet counts, facet structure, and
the commuting relations between the complexes.  Each generator returns an
:class:`~repro.analysis.result.ExperimentResult` whose verdict compares
the computed structure against what the paper draws.
"""

from __future__ import annotations

from ..core.leader_election import leader_election, leader_election_complex
from ..core.projection import project_complex, project_facet
from ..core.protocol_complex import (
    build_protocol_complex,
    facet_correspondence_is_bijective,
)
from ..core.realization_complex import (
    facet_count,
    realization_complex,
    vertex_count,
)
from ..core.solvability import (
    realization_solves,
    solves_by_definition_31,
    solves_by_definition_34,
    solves_by_forced_map,
)
from ..models.blackboard import BlackboardModel
from ..models.message_passing import MessagePassingModel
from ..models.ports import round_robin_assignment
from ..randomness.configuration import enumerate_configurations
from ..randomness.realizations import iter_consistent_realizations
from ..viz.ascii import format_simplex
from .result import ExperimentResult


def figure1_protocol_complex(t_max: int = 2) -> ExperimentResult:
    """Figure 1: evolution of ``P(t)`` for two parties on a blackboard.

    The paper draws ``P(0)`` (one edge), ``P(1)`` (4 vertices / 4 edges)
    and ``P(2)`` (16 vertices / 16 edges).  Closed forms for n=2: ``P(t)``
    has ``2^{2t}`` facets and, for t >= 1, ``2^{2t}`` vertices (each
    party's knowledge is its own ``t`` bits plus the other's ``t-1`` bits).
    """
    rows = []
    passed = True
    for t in range(t_max + 1):
        model = BlackboardModel(2)
        build = build_protocol_complex(model, t)
        verts = build.vertex_count()
        facets = build.facet_count()
        expected_facets = 2 ** (2 * t)
        expected_verts = 2 if t == 0 else 2 ** (2 * t)
        bijective = facet_correspondence_is_bijective(build)
        ok = (
            facets == expected_facets
            and verts == expected_verts
            and bijective
        )
        passed &= ok
        rows.append(
            (
                t,
                verts,
                expected_verts,
                facets,
                expected_facets,
                "yes" if bijective else "NO",
                "ok" if ok else "MISMATCH",
            )
        )
    return ExperimentResult(
        experiment_id="figure-1",
        title="P(t) for n=2 on the blackboard (Figure 1)",
        headers=(
            "t",
            "vertices",
            "paper",
            "facets",
            "paper",
            "h bijective on facets",
            "check",
        ),
        rows=rows,
        notes=[
            "paper draws P(1) with 4 knowledge states/4 edges and P(2) "
            "with 16 states/16 edges; h: P(t)->R(t) must pair facets 1:1",
        ],
        passed=passed,
    )


def figure2_realization_complex(n: int = 3, t_max: int = 1) -> ExperimentResult:
    """Figure 2: ``R(0)`` and ``R(1)`` for three processes.

    ``R(t)`` has ``n * 2^t`` vertices and ``2^{nt}`` facets; the paper
    draws ``R(1)`` for n=3 with 6 vertices and 8 triangles.
    """
    rows = []
    passed = True
    for t in range(t_max + 1):
        complex_ = realization_complex(n, t)
        verts = len(complex_.vertices())
        facets = complex_.facet_count()
        expected_v = vertex_count(n, t) if t else n
        expected_f = facet_count(n, t)
        pure = complex_.is_pure() and complex_.dimension == n - 1
        ok = verts == expected_v and facets == expected_f and pure
        passed &= ok
        rows.append((t, verts, expected_v, facets, expected_f, "ok" if ok else "MISMATCH"))
    return ExperimentResult(
        experiment_id="figure-2",
        title=f"R(t) for n={n} (Figure 2)",
        headers=("t", "vertices", "paper", "facets", "paper", "check"),
        rows=rows,
        notes=["paper draws R(1), n=3: 6 vertices, 8 facets (triangles)"],
        passed=passed,
    )


def figure3_output_projection(n: int = 3) -> ExperimentResult:
    """Figure 3: ``O_LE`` and ``pi(O_LE)``.

    ``O_LE`` has ``n`` facets of dimension ``n-1``; ``pi(O_LE)`` has the
    isolated vertices ``{(i,1)}`` and the simplices ``{(j,0) : j != i}``.
    """
    complex_ = leader_election_complex(n)
    projected = project_complex(complex_)
    isolated = projected.isolated_vertices()
    expected_projected_facets = 2 * n if n > 1 else 1
    rows = [
        ("O_LE facets", complex_.facet_count(), n),
        ("O_LE symmetric", complex_.is_symmetric(), True),
        ("pi(O_LE) facets", projected.facet_count(), expected_projected_facets),
        ("pi(O_LE) isolated vertices", len(isolated), n),
        (
            "isolated are the leaders",
            all(v.value == 1 for v in isolated),
            True,
        ),
    ]
    passed = all(str(got) == str(want) for _, got, want in rows)
    tau0 = sorted(complex_.facets, key=lambda f: format_simplex(f))[0]
    notes = [
        "example facet tau and pi(tau): "
        + format_simplex(tau0)
        + "  ->  "
        + " ; ".join(
            format_simplex(f) for f in project_facet(tau0).sorted_facets()
        )
    ]
    return ExperimentResult(
        experiment_id="figure-3",
        title=f"O_LE and pi(O_LE) for n={n} (Figure 3)",
        headers=("quantity", "computed", "paper"),
        rows=rows,
        notes=notes,
        passed=passed,
    )


def figure4_solvability_equivalence(
    n: int = 3, t: int = 1
) -> ExperimentResult:
    """Figure 4 / Lemma 3.5: the three solvability notions coincide.

    For every configuration ``alpha`` of ``n`` nodes, every consistent
    realization at time ``t``, and both models, the literal Definition 3.1
    (map ``sigma -> tau``), the literal Definition 3.4 (map
    ``pi~(rho) -> pi(tau)``), its forced-map variant, and the fast
    partition-refinement criterion must agree.
    """
    task = leader_election(n)
    models = {
        "blackboard": BlackboardModel(n),
        "message-passing": MessagePassingModel(round_robin_assignment(n)),
    }
    rows = []
    passed = True
    for model_name, model in models.items():
        checked = 0
        agreements = 0
        for alpha in enumerate_configurations(n):
            for rho in iter_consistent_realizations(alpha, t):
                answers = {
                    realization_solves(model, rho, task),
                    solves_by_definition_34(model, rho, task),
                    solves_by_forced_map(model, rho, task),
                    solves_by_definition_31(model, rho, task),
                }
                checked += 1
                if len(answers) == 1:
                    agreements += 1
        ok = agreements == checked
        passed &= ok
        rows.append((model_name, checked, agreements, "ok" if ok else "DISAGREE"))
    return ExperimentResult(
        experiment_id="figure-4",
        title="Definitions 3.1 / 3.4 / refinement agree (Figure 4, Lemma 3.5)",
        headers=("model", "states checked", "agreeing", "check"),
        rows=rows,
        notes=[
            f"exhaustive over all configurations of n={n} and all "
            f"consistent realizations at t={t}",
        ],
        passed=passed,
    )


__all__ = [
    "figure1_protocol_complex",
    "figure2_realization_complex",
    "figure3_output_projection",
    "figure4_solvability_equivalence",
]
