"""Exhaustive worst-case search over clique port assignments.

Theorem 4.2 quantifies over the *worst* port assignment, and Lemma 4.3
exhibits one explicit candidate.  For small cliques we can close the loop
by brute force: enumerate **all** ``(n-1)!^n`` port assignments, compute
the exact eventual-solvability limit for each, and check that

* when ``gcd = 1``: every assignment has limit 1 (the 'if' direction is
  truly assignment-independent);
* when ``gcd > 1``: the minimum over assignments is 0, and the Lemma 4.3
  construction attains it -- i.e. the paper's adversary is an *optimal*
  adversary, not merely a valid one.

The sweep also measures how adversarial the worst case is: the fraction
of assignments that keep leader election solvable (footnote 5 territory).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterator

from ..core.leader_election import leader_election
from ..chain import Query, compile_chain, run_queries
from ..models.ports import PortAssignment, adversarial_assignment
from ..randomness.configuration import RandomnessConfiguration
from .result import ExperimentResult


def iter_all_port_assignments(
    n: int, *, limit: int = 1 << 14
) -> Iterator[PortAssignment]:
    """All ``(n-1)!^n`` clique port assignments (guarded by count)."""
    import math

    total = math.factorial(n - 1) ** n
    if total > limit:
        raise ValueError(f"{total} assignments exceed the limit {limit}")
    others = [
        [x for x in range(n) if x != i] for i in range(n)
    ]
    per_node = [
        [list(p) for p in itertools.permutations(others[i])]
        for i in range(n)
    ]
    for rows in itertools.product(*per_node):
        yield PortAssignment(list(rows))


def exhaustive_worst_case(
    shape: tuple[int, ...],
    *,
    engine=None,
    chunk: int = 64,
) -> tuple[Fraction, Fraction, int, int]:
    """(min limit, max limit, #solvable assignments, #assignments).

    ``engine`` (a :class:`repro.runner.engines.ExecutionEngine`) splits
    the ``(n-1)!^n`` assignments into chunks of ``chunk`` and folds the
    per-chunk extrema; the fold is exact (fractions travel as strings),
    so any engine returns the same quadruple as the serial loop.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    task = leader_election(alpha.n)
    # The serial loop below and execute_port_chunk implement the same
    # exact fold; the serial path is kept separate so it never pays the
    # table-serialization round-trip.  Keep the two in sync.
    if engine is not None and getattr(engine, "name", "serial") != "serial":
        from ..runner.worker import chain_context_payload, execute_port_chunk

        context = chain_context_payload()

        def iter_payloads():
            # Chunk straight off the assignment iterator instead of
            # materializing all (n-1)!^n tables twice.
            assignments = iter_all_port_assignments(alpha.n)
            while True:
                batch = [
                    [list(ports.neighbours(i)) for i in range(ports.n)]
                    for ports in itertools.islice(assignments, chunk)
                ]
                if not batch:
                    return
                yield {
                    "sizes": list(shape),
                    "task": "leader",
                    "tables": batch,
                    **context,
                }

        payloads = iter_payloads()
        lowest = Fraction(1)
        highest = Fraction(0)
        solvable = 0
        total = 0
        for record in engine.map(execute_port_chunk, payloads):
            lowest = min(lowest, Fraction(record["lowest"]))
            highest = max(highest, Fraction(record["highest"]))
            solvable += record["solvable"]
            total += record["total"]
        return lowest, highest, solvable, total
    lowest = Fraction(1)
    highest = Fraction(0)
    solvable = 0
    total = 0
    for ports in iter_all_port_assignments(alpha.n):
        # One-shot chains: compile unmemoized to bound memo growth.
        (limit,) = run_queries(
            compile_chain(alpha, ports, use_memo=False),
            [Query.limit(task)],
        )
        lowest = min(lowest, limit)
        highest = max(highest, limit)
        solvable += limit == 1
        total += 1
    return lowest, highest, solvable, total


def worst_case_port_search(
    shapes: tuple[tuple[int, ...], ...] = ((1, 2), (3,), (2, 2), (1, 3), (1, 1, 2), (4,), (1, 1, 1, 1)),
    *,
    engine=None,
) -> ExperimentResult:
    """Theorem 4.2's worst-case quantifier, checked by brute force.

    ``engine`` parallelizes the per-shape enumeration (see
    :func:`exhaustive_worst_case`); the verdicts are engine-independent.
    """
    rows = []
    passed = True
    for shape in shapes:
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        task = leader_election(alpha.n)
        lowest, highest, solvable, total = exhaustive_worst_case(
            shape, engine=engine
        )
        (lemma_limit,) = run_queries(
            compile_chain(alpha, adversarial_assignment(shape)),
            [Query.limit(task)],
        )
        predicted_worst = Fraction(1) if alpha.gcd == 1 else Fraction(0)
        ok = (
            lowest == predicted_worst
            and lemma_limit == lowest
            and lowest in (0, 1)
            and highest in (0, 1)
        )
        passed &= ok
        rows.append(
            (
                shape,
                alpha.gcd,
                total,
                f"{solvable}/{total}",
                float(lowest),
                float(lemma_limit),
                "yes" if predicted_worst == 1 else "no",
                "ok" if ok else "MISMATCH",
            )
        )
    return ExperimentResult(
        experiment_id="extension-worst-case-search",
        title="Theorem 4.2's worst case, by exhaustive port enumeration",
        headers=(
            "sizes",
            "gcd",
            "#assignments",
            "solvable assignments",
            "min limit",
            "Lemma 4.3 limit",
            "paper worst case",
            "check",
        ),
        rows=rows,
        notes=[
            "the Lemma 4.3 assignment always attains the exact minimum: "
            "the paper's adversary is optimal, not merely valid",
            "gcd>1 shapes still have many solvable assignments "
            "(footnote 5): the worst case is genuinely adversarial",
        ],
        passed=passed,
    )


__all__ = [
    "exhaustive_worst_case",
    "iter_all_port_assignments",
    "worst_case_port_search",
]
