"""Symmetries of port assignments and the limits of Lemma 4.3's argument.

Lemma 4.3's impossibility engine is an *equivariant symmetry*: a
non-trivial permutation of the nodes that preserves sources and ports
forces whole orbits to stay knowledge-consistent, so no singleton class
(hence no leader) can emerge.  This module generalizes the engine and
measures its reach:

* :func:`source_preserving_automorphisms` finds **all** such symmetries of
  a given assignment;
* the census experiment verifies, exhaustively over every port assignment
  of the 4-clique, that a non-trivial automorphism always implies
  unsolvability (the generalized Lemma 4.3), and
* shows the converse **fails**: most unsolvable assignments carry *no*
  global automorphism.  The knowledge-partition obstruction is strictly
  finer than symmetry -- which matches the related work's use of graph
  *fibrations* (Boldi et al.) rather than automorphisms for the
  deterministic characterization.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..core.leader_election import leader_election
from ..chain import compile_chain
from ..models.ports import PortAssignment
from ..randomness.configuration import RandomnessConfiguration
from .result import ExperimentResult
from .worst_case_search import iter_all_port_assignments


def source_preserving_automorphisms(
    ports: PortAssignment, alpha: RandomnessConfiguration
) -> Iterator[tuple[int, ...]]:
    """Non-trivial node permutations preserving sources and ports.

    A permutation ``g`` qualifies when ``source(g(i)) = source(i)`` and
    ``neighbour(g(i), p) = g(neighbour(i, p))`` for every node ``i`` and
    port ``p``.  Exhaustive over ``n!`` permutations -- small ``n`` only.
    """
    n = ports.n
    if alpha.n != n:
        raise ValueError("configuration and ports sizes differ")
    identity = tuple(range(n))
    for perm in itertools.permutations(range(n)):
        if perm == identity:
            continue
        if any(
            alpha.source_of(perm[i]) != alpha.source_of(i) for i in range(n)
        ):
            continue
        if all(
            ports.neighbour(perm[i], p) == perm[ports.neighbour(i, p)]
            for i in range(n)
            for p in range(1, n)
        ):
            yield perm


def has_nontrivial_automorphism(
    ports: PortAssignment, alpha: RandomnessConfiguration
) -> bool:
    """True when at least one non-trivial symmetry exists."""
    for _ in source_preserving_automorphisms(ports, alpha):
        return True
    return False


def symmetry_census(
    shapes: tuple[tuple[int, ...], ...] = ((2, 2), (4,), (1, 3), (1, 1, 2)),
) -> ExperimentResult:
    """Exhaustive n=4 census: symmetry implies unsolvability, never the
    reverse; and symmetry does not exhaust unsolvability."""
    rows = []
    passed = True
    for shape in shapes:
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        task = leader_election(alpha.n)
        solvable_with_symmetry = 0
        unsolvable_with_symmetry = 0
        unsolvable_without_symmetry = 0
        solvable = 0
        total = 0
        for ports in iter_all_port_assignments(alpha.n):
            total += 1
            # One-shot chains per enumerated assignment: skip the memo
            # so the census does not pin thousands of chains in memory.
            is_solvable = (
                compile_chain(
                    alpha, ports, use_memo=False
                ).limit_solving_probability(task)
                == 1
            )
            symmetric = has_nontrivial_automorphism(ports, alpha)
            if is_solvable:
                solvable += 1
                solvable_with_symmetry += symmetric
            elif symmetric:
                unsolvable_with_symmetry += 1
            else:
                unsolvable_without_symmetry += 1
        # The sound direction must be exceptionless.
        ok = solvable_with_symmetry == 0
        # For gcd > 1 shapes the converse must visibly fail (that is the
        # finding): some unsolvable assignment without global symmetry.
        if alpha.gcd > 1:
            ok &= unsolvable_without_symmetry > 0
        passed &= ok
        rows.append(
            (
                shape,
                alpha.gcd,
                total,
                solvable,
                unsolvable_with_symmetry,
                unsolvable_without_symmetry,
                solvable_with_symmetry,
                "ok" if ok else "VIOLATED",
            )
        )
    return ExperimentResult(
        experiment_id="extension-symmetry-census",
        title="Port-assignment symmetries vs solvability (exhaustive, n=4)",
        headers=(
            "sizes",
            "gcd",
            "#assignments",
            "solvable",
            "unsolvable w/ symmetry",
            "unsolvable w/o symmetry",
            "solvable w/ symmetry (must be 0)",
            "check",
        ),
        rows=rows,
        notes=[
            "a non-trivial source-preserving port-automorphism always kills "
            "leader election (generalized Lemma 4.3) -- zero exceptions",
            "the converse fails: most unsolvable assignments have no global "
            "automorphism; the knowledge-partition obstruction is finer "
            "(cf. Boldi et al.'s fibrations in the paper's related work)",
        ],
        passed=passed,
    )


__all__ = [
    "has_nontrivial_automorphism",
    "source_preserving_automorphisms",
    "symmetry_census",
]
