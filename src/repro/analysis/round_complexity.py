"""Round complexity: protocol decision rounds vs the chain's expectation.

The chain computes the exact expected round at which the *global state*
first solves the task; the protocols decide exactly one round later (the
partition becomes common knowledge with a one-round lag).  This experiment
runs the real protocols many times and checks the empirical mean decision
round against ``E[T] + 1`` -- tying the analysis layer to the executable
layer quantitatively, not just on the 0/1 outcome.
"""

from __future__ import annotations

import math

from ..algorithms.blackboard_leader import BlackboardLeaderNode
from ..algorithms.euclid_leader import EuclidLeaderNode
from ..algorithms.network import BlackboardNetwork, CliqueNetwork
from ..core.leader_election import leader_election
from ..chain import Query, compile_chain, run_queries
from ..models.ports import adversarial_assignment
from ..randomness.configuration import RandomnessConfiguration
from .result import ExperimentResult


def _protocol_mean_rounds(
    shape: tuple[int, ...], *, clique: bool, runs: int, max_rounds: int = 256
) -> tuple[float, float]:
    """Empirical mean and standard error of the decision round."""
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    total = 0
    total_sq = 0
    for seed in range(runs):
        if clique:
            network = CliqueNetwork(
                alpha,
                adversarial_assignment(shape),
                EuclidLeaderNode,
                seed=seed,
            )
        else:
            network = BlackboardNetwork(
                alpha, BlackboardLeaderNode, seed=seed
            )
        result = network.run(max_rounds=max_rounds)
        if not result.all_decided:
            raise AssertionError(
                f"protocol failed to decide on {shape} (seed {seed})"
            )
        total += result.rounds
        total_sq += result.rounds**2
    mean = total / runs
    variance = max(0.0, total_sq / runs - mean * mean)
    return mean, math.sqrt(variance / runs)


def protocol_round_complexity(
    runs: int = 400,
) -> ExperimentResult:
    """Mean protocol decision round vs chain ``E[T] + 1``.

    Blackboard cases must match closely (the blackboard protocol decides
    exactly one round after the state solves).  Clique cases give an upper
    bound check only: the Euclid protocol's matching moves can *shorten*
    the wait relative to passive knowledge exchange, and its decision rule
    lags one round.
    """
    rows = []
    passed = True
    blackboard_shapes = [(1, 1), (1, 2), (1, 2, 2), (1, 1, 2)]
    for shape in blackboard_shapes:
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        task = leader_election(alpha.n)
        (expected,) = run_queries(
            compile_chain(alpha), [Query.expected_time(task)]
        )
        assert expected is not None
        predicted = float(expected) + 1
        mean, stderr = _protocol_mean_rounds(shape, clique=False, runs=runs)
        # Allow 5 standard errors plus a small absolute slack.
        ok = abs(mean - predicted) <= 5 * stderr + 0.05
        passed &= ok
        rows.append(
            (
                "blackboard",
                shape,
                f"{predicted:.4f}",
                f"{mean:.4f}",
                f"{stderr:.4f}",
                "ok" if ok else "MISMATCH",
            )
        )

    clique_shapes = [(2, 3), (1, 2)]
    for shape in clique_shapes:
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        task = leader_election(alpha.n)
        (expected,) = run_queries(
            compile_chain(alpha, adversarial_assignment(shape)),
            [Query.expected_time(task)],
        )
        assert expected is not None
        mean, stderr = _protocol_mean_rounds(shape, clique=True, runs=runs)
        # The protocol may beat passive refinement (matching pressure) but
        # never by more than its one-round announcement lag allows; sanity
        # bound: within [1, E[T] + 3].
        ok = 1.0 <= mean <= float(expected) + 3
        passed &= ok
        rows.append(
            (
                "clique (adv)",
                shape,
                f"<= {float(expected) + 1:.4f} (+lag)",
                f"{mean:.4f}",
                f"{stderr:.4f}",
                "ok" if ok else "MISMATCH",
            )
        )

    return ExperimentResult(
        experiment_id="extension-round-complexity",
        title="Protocol decision rounds vs exact chain expectation",
        headers=(
            "model",
            "sizes",
            "chain E[T]+1",
            "protocol mean",
            "std err",
            "check",
        ),
        rows=rows,
        notes=[
            f"{runs} runs per configuration; blackboard must match "
            "E[T]+1 statistically, the clique protocol is bounded",
        ],
        passed=passed,
    )


__all__ = ["protocol_round_complexity"]
