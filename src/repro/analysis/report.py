"""Serialization of experiment results: JSON, CSV, and Markdown.

Experiment results are plain tables; this module persists them so sweeps
can be archived, diffed across versions, and loaded into external tooling.
The JSON form round-trips losslessly (used by the test suite); CSV and
Markdown are one-way exports for spreadsheets and docs.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Iterable

from .result import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-safe dictionary representation (cells stringified)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [[str(cell) for cell in row] for row in result.rows],
        "notes": list(result.notes),
        "passed": result.passed,
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict` (cells stay strings)."""
    required = {"experiment_id", "title", "headers", "rows", "passed"}
    missing = required - payload.keys()
    if missing:
        raise ValueError(f"payload misses keys: {sorted(missing)}")
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=tuple(payload["headers"]),
        rows=[tuple(row) for row in payload["rows"]],
        notes=list(payload.get("notes", [])),
        passed=bool(payload["passed"]),
    )


def results_to_json(results: Iterable[ExperimentResult]) -> str:
    """Serialize a batch of results as a JSON document."""
    return json.dumps(
        [result_to_dict(result) for result in results], indent=2
    )


def results_from_json(text: str) -> list[ExperimentResult]:
    """Inverse of :func:`results_to_json`."""
    return [result_from_dict(item) for item in json.loads(text)]


def result_to_csv(result: ExperimentResult) -> str:
    """One experiment's table as CSV (headers + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow([str(cell) for cell in row])
    return buffer.getvalue()


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a GitHub-flavoured Markdown section."""
    lines = [f"### {result.experiment_id}: {result.title}", ""]
    lines.append("| " + " | ".join(str(h) for h in result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    lines.append("")
    for note in result.notes:
        lines.append(f"*{note}*")
    lines.append("")
    lines.append(f"**Verdict: {'PASS' if result.passed else 'FAIL'}**")
    return "\n".join(lines)


def write_report(
    results: Iterable[ExperimentResult],
    directory: "str | pathlib.Path",
    *,
    stem: str = "experiments",
) -> dict[str, pathlib.Path]:
    """Write a full report: one JSON bundle, one CSV per experiment, and a
    combined Markdown file.  Returns the written paths keyed by kind."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    results = list(results)

    json_path = directory / f"{stem}.json"
    json_path.write_text(results_to_json(results))

    markdown_parts = [
        "# Experiment report",
        "",
        f"{sum(r.passed for r in results)}/{len(results)} experiments pass.",
        "",
    ]
    csv_paths = []
    for result in results:
        csv_path = directory / f"{stem}-{result.experiment_id}.csv"
        csv_path.write_text(result_to_csv(result))
        csv_paths.append(csv_path)
        markdown_parts.append(result_to_markdown(result))
        markdown_parts.append("")
    md_path = directory / f"{stem}.md"
    md_path.write_text("\n".join(markdown_parts))

    return {"json": json_path, "markdown": md_path, "csv": csv_paths[0] if csv_paths else None}


__all__ = [
    "result_from_dict",
    "result_to_csv",
    "result_to_dict",
    "result_to_markdown",
    "results_from_json",
    "results_to_json",
    "write_report",
]
