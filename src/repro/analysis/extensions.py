"""Extension experiments: the task zoo and expected election times.

The paper presents leader election as one instance of the framework; these
experiments validate closed-form characterizations this library derives
for its neighbours (unique ids, leader+deputy, threshold election, team
partition) against the exact chain limits, and quantify *how fast*
solvable configurations solve via exact expected hitting times.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.leader_election import leader_election
from ..chain import Query, compile_chain, run_group_queries
from ..core.task_zoo import (
    blackboard_leader_and_deputy_solvable,
    blackboard_threshold_solvable,
    blackboard_unique_ids_solvable,
    leader_and_deputy,
    mp_worst_case_leader_and_deputy_solvable,
    mp_worst_case_threshold_solvable,
    mp_worst_case_unique_ids_solvable,
    threshold_election,
    unique_ids,
)
from ..models.ports import adversarial_assignment
from ..randomness.configuration import (
    RandomnessConfiguration,
    enumerate_size_shapes,
)
from .result import ExperimentResult


def extension_task_zoo(n_max: int = 5) -> ExperimentResult:
    """Closed-form characterizations for the task zoo vs exact limits."""
    configs = []
    items = []
    for n in range(2, n_max + 1):
        tasks = (
            ("unique-ids", unique_ids(n),
             blackboard_unique_ids_solvable,
             mp_worst_case_unique_ids_solvable),
            ("leader+deputy", leader_and_deputy(n),
             blackboard_leader_and_deputy_solvable,
             mp_worst_case_leader_and_deputy_solvable),
            ("threshold[1,2]", threshold_election(n, 1, 2),
             lambda a: blackboard_threshold_solvable(a, 1, 2),
             lambda a: mp_worst_case_threshold_solvable(a, 1, 2)),
        )
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            ports = adversarial_assignment(shape)
            configs.append((n, shape, alpha, tasks))
            # One solvability batch per chain covering the whole zoo;
            # the whole axis (every shape, both models) runs as one
            # grouped pass below.
            zoo = [Query.solvable(task) for _, task, _, _ in tasks]
            items.append((compile_chain(alpha), zoo))
            items.append((compile_chain(alpha, ports), zoo))
    answers = run_group_queries(items)
    rows = []
    passed = True
    for (n, shape, alpha, tasks), bb_verdicts, mp_verdicts in zip(
        configs, answers[0::2], answers[1::2]
    ):
        for (name, task, bb_predictor, mp_predictor), bb, mp in zip(
            tasks, bb_verdicts, mp_verdicts
        ):
            bb_pred = bb_predictor(alpha)
            mp_pred = mp_predictor(alpha)
            ok = bb == bb_pred and mp == mp_pred
            passed &= ok
            rows.append(
                (
                    n,
                    shape,
                    name,
                    "yes" if bb else "no",
                    "yes" if bb_pred else "no",
                    "yes" if mp else "no",
                    "yes" if mp_pred else "no",
                    "ok" if ok else "MISMATCH",
                )
            )
    return ExperimentResult(
        experiment_id="extension-task-zoo",
        title="Task zoo: exact limits vs derived closed forms",
        headers=(
            "n",
            "sizes",
            "task",
            "blackboard (exact)",
            "predicted",
            "clique adv (exact)",
            "predicted",
            "check",
        ),
        rows=rows,
        notes=[
            "predictions: unique-ids bb=all n_i=1 / mp=gcd 1; "
            "leader+deputy bb=two singletons / mp=gcd 1; "
            "threshold[lo,hi] bb=subset-sum hits window / mp=gcd multiple "
            "in window",
        ],
        passed=passed,
    )


def extension_expected_times(n_max: int = 6) -> ExperimentResult:
    """Exact expected rounds until leader election is solved.

    For solvable shapes in both models; validated against a Monte-Carlo
    average in the test suite.  The paper proves eventual solvability; this
    quantifies the rate implied by its mechanisms.
    """
    configs = []
    items = []
    for n in range(1, n_max + 1):
        task = leader_election(n)
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            configs.append((n, shape, alpha))
            items.append(
                (compile_chain(alpha), [Query.expected_time(task)])
            )
            items.append(
                (
                    compile_chain(alpha, adversarial_assignment(shape)),
                    [Query.expected_time(task)],
                )
            )
    # Every shape's blackboard and adversarial expected times in one
    # grouped pass (items alternate blackboard/clique per shape).
    answers = run_group_queries(items)
    rows = []
    passed = True
    for (n, shape, alpha), (bb,), (mp,) in zip(
        configs, answers[0::2], answers[1::2]
    ):
        bb_ok = (bb is not None) == (1 in shape)
        mp_ok = (mp is not None) == (alpha.gcd == 1)
        if bb is not None and mp is not None:
            # ports only help: expected time never worse than blackboard
            mp_ok &= mp <= bb
        passed &= bb_ok and mp_ok
        rows.append(
            (
                n,
                shape,
                str(bb) if bb is not None else "inf",
                f"{float(bb):.3f}" if bb is not None else "-",
                str(mp) if mp is not None else "inf",
                f"{float(mp):.3f}" if mp is not None else "-",
                "ok" if bb_ok and mp_ok else "MISMATCH",
            )
        )
    return ExperimentResult(
        experiment_id="extension-expected-time",
        title="Exact expected rounds to a solving global state",
        headers=(
            "n",
            "sizes",
            "E[T] blackboard",
            "~",
            "E[T] clique adv",
            "~",
            "check",
        ),
        rows=rows,
        notes=[
            "finite exactly when eventually solvable (Thm 4.1 / 4.2); "
            "protocols need one extra round to announce outputs",
        ],
        passed=passed,
    )


__all__ = ["extension_expected_times", "extension_task_zoo"]
