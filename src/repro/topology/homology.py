"""Simplicial homology over GF(2).

The paper's arguments hinge on coarse topological structure: isolated
vertices, connected components, and the fact that consistency projections
are disjoint unions of simplices.  Betti numbers over GF(2) make these
statements checkable by machine:

* ``beta_0`` counts connected components;
* a disjoint union of simplices has ``beta_0 = #facets`` and every higher
  Betti number zero (each simplex is contractible);
* the boundary-of-a-simplex complex has the homology of a sphere.

Boundary matrices are built over GF(2) (orientation-free, which is all we
need) and ranks are computed by bit-packed Gaussian elimination, so no
external topology package is required.
"""

from __future__ import annotations

from .complex import SimplicialComplex
from .simplex import Simplex


def _gf2_rank(rows: list[int]) -> int:
    """Rank of a GF(2) matrix whose rows are int bitmasks."""
    rank = 0
    pivots: list[int] = []
    for row in rows:
        for pivot in pivots:
            row = min(row, row ^ pivot)
        if row:
            pivots.append(row)
            # Keep pivot rows sorted by leading bit (descending) so the
            # reduction above stays canonical.
            pivots.sort(reverse=True)
            rank += 1
    return rank


def boundary_matrix(
    complex_: SimplicialComplex, dim: int
) -> tuple[list[int], int, int]:
    """GF(2) boundary matrix ``partial_dim`` as bitmask rows.

    Returns ``(rows, n_rows, n_cols)`` where rows are indexed by
    ``dim``-simplices and columns by ``(dim-1)``-simplices; entry 1 when the
    column simplex is a facet (codimension-1 face) of the row simplex.
    """
    if dim <= 0:
        return ([], len(complex_.simplices_of_dimension(0)) if dim == 0 else 0, 0)
    higher = complex_.simplices_of_dimension(dim)
    lower = complex_.simplices_of_dimension(dim - 1)
    index = {simplex: j for j, simplex in enumerate(lower)}
    rows: list[int] = []
    for simplex in higher:
        mask = 0
        verts = simplex.sorted_vertices()
        for skip in range(len(verts)):
            face = Simplex(v for j, v in enumerate(verts) if j != skip)
            mask |= 1 << index[face]
        rows.append(mask)
    return rows, len(higher), len(lower)


def betti_numbers(complex_: SimplicialComplex) -> tuple[int, ...]:
    """GF(2) Betti numbers ``(beta_0, ..., beta_dim)``.

    ``beta_d = dim ker(partial_d) - dim im(partial_{d+1})`` with the usual
    convention ``partial_0 = 0``.
    """
    if complex_.is_empty:
        return ()
    top = complex_.dimension
    counts = [len(complex_.simplices_of_dimension(d)) for d in range(top + 1)]
    ranks = [0] * (top + 2)  # ranks[d] = rank of partial_d; partial_0 = 0
    for d in range(1, top + 1):
        rows, _, _ = boundary_matrix(complex_, d)
        ranks[d] = _gf2_rank(rows)
    betti = []
    for d in range(top + 1):
        kernel = counts[d] - ranks[d]
        betti.append(kernel - ranks[d + 1])
    return tuple(betti)


def euler_characteristic_from_betti(complex_: SimplicialComplex) -> int:
    """Euler characteristic via the homological formula ``sum (-1)^i beta_i``.

    Must agree with the combinatorial
    :meth:`~repro.topology.complex.SimplicialComplex.euler_characteristic`;
    the test suite asserts this on random complexes.
    """
    return sum((-1) ** i * b for i, b in enumerate(betti_numbers(complex_)))


def is_disjoint_union_of_simplices(complex_: SimplicialComplex) -> bool:
    """Homological fingerprint of a consistency projection.

    A complex is a disjoint union of simplices iff its facets are pairwise
    vertex-disjoint; in that case ``beta_0`` equals the facet count and all
    higher Betti numbers vanish.  The direct combinatorial test is used; the
    homology statement is validated by the test suite.
    """
    seen: set = set()
    for facet in complex_.facets:
        if seen & set(facet.vertices):
            return False
        seen.update(facet.vertices)
    return True


__all__ = [
    "betti_numbers",
    "boundary_matrix",
    "euler_characteristic_from_betti",
    "is_disjoint_union_of_simplices",
]
