"""Simplicial-topology substrate for the reproduction.

Everything the paper needs from algebraic topology (Appendix A) is built
here from scratch: chromatic vertices and simplices, complexes stored by
facets, simplicial maps with the paper's side conditions (name-preserving,
name-independent), isomorphism tests, and GF(2) homology for structural
sanity checks.
"""

from .complex import SimplicialComplex, disjoint_union_of_simplices
from .homology import (
    betti_numbers,
    boundary_matrix,
    euler_characteristic_from_betti,
    is_disjoint_union_of_simplices,
)
from .isomorphism import (
    are_isomorphic,
    are_isomorphic_chromatic,
    equal_as_projections,
    facet_name_partition,
    iter_isomorphisms,
)
from .maps import (
    VertexMap,
    exists_simplicial_map,
    find_simplicial_map,
    iter_simplicial_maps,
    unique_name_preserving_map,
)
from .simplex import Simplex, Vertex, as_vertex

__all__ = [
    "Simplex",
    "SimplicialComplex",
    "Vertex",
    "VertexMap",
    "are_isomorphic",
    "are_isomorphic_chromatic",
    "as_vertex",
    "betti_numbers",
    "boundary_matrix",
    "disjoint_union_of_simplices",
    "equal_as_projections",
    "euler_characteristic_from_betti",
    "exists_simplicial_map",
    "facet_name_partition",
    "find_simplicial_map",
    "is_disjoint_union_of_simplices",
    "iter_isomorphisms",
    "iter_simplicial_maps",
    "unique_name_preserving_map",
]
