"""Isomorphism of (chromatic) simplicial complexes.

Appendix A defines complexes ``K`` and ``L`` to be isomorphic when there are
mutually inverse simplicial maps between them.  Two flavours are provided:

* :func:`are_isomorphic_chromatic` -- name-preserving isomorphism (each
  vertex ``(i, x)`` must map to a vertex ``(i, y)``).  This is the notion
  used by the paper, e.g. for the facet correspondence ``h`` between
  ``P(t)`` and ``R(t)``.
* :func:`are_isomorphic` -- unrestricted isomorphism, implemented as a
  backtracking search with cheap invariant pruning; only intended for small
  complexes (tests, illustrations).
"""

from __future__ import annotations

from typing import Iterator

from .complex import SimplicialComplex
from .maps import VertexMap, iter_simplicial_maps
from .simplex import Vertex


def _facet_signature(complex_: SimplicialComplex) -> tuple[tuple[int, int], ...]:
    """Multiset of (facet dimension, count) -- an isomorphism invariant."""
    counts: dict[int, int] = {}
    for facet in complex_.facets:
        counts[facet.dimension] = counts.get(facet.dimension, 0) + 1
    return tuple(sorted(counts.items()))


def _vertex_degree_signature(complex_: SimplicialComplex) -> tuple[int, ...]:
    """Sorted facet-membership degrees of vertices -- another invariant."""
    degree: dict[Vertex, int] = {v: 0 for v in complex_.vertices()}
    for facet in complex_.facets:
        for vertex in facet.vertices:
            degree[vertex] += 1
    return tuple(sorted(degree.values()))


def _is_bijective_on_vertices(mapping: VertexMap) -> bool:
    images = {mapping[v] for v in mapping.source.vertices()}
    return len(images) == len(mapping.source.vertices()) and images == set(
        mapping.target.vertices()
    )


def _is_isomorphism(mapping: VertexMap) -> bool:
    """A bijective simplicial map whose inverse is simplicial."""
    if not _is_bijective_on_vertices(mapping):
        return False
    inverse = VertexMap(
        mapping.target,
        mapping.source,
        {img: src for src, img in mapping.items()},
    )
    return mapping.is_simplicial() and inverse.is_simplicial()


def iter_isomorphisms(
    left: SimplicialComplex,
    right: SimplicialComplex,
    *,
    name_preserving: bool = True,
) -> Iterator[VertexMap]:
    """Yield every isomorphism between the two complexes."""
    if _facet_signature(left) != _facet_signature(right):
        return
    if _vertex_degree_signature(left) != _vertex_degree_signature(right):
        return
    for mapping in iter_simplicial_maps(
        left, right, name_preserving=name_preserving
    ):
        if _is_isomorphism(mapping):
            yield mapping


def are_isomorphic_chromatic(
    left: SimplicialComplex, right: SimplicialComplex
) -> bool:
    """Name-preserving isomorphism test."""
    for _ in iter_isomorphisms(left, right, name_preserving=True):
        return True
    return False


def are_isomorphic(left: SimplicialComplex, right: SimplicialComplex) -> bool:
    """Unrestricted isomorphism test (small complexes only)."""
    for _ in iter_isomorphisms(left, right, name_preserving=False):
        return True
    return False


def facet_name_partition(complex_: SimplicialComplex) -> tuple[tuple[int, ...], ...]:
    """The facets as a sorted tuple of sorted name tuples.

    For the paper's projection complexes (disjoint unions of simplices, where
    every vertex lies in exactly one facet and vertex values are opaque
    knowledge ids) this is a complete, value-agnostic canonical form: two
    projections are name-preservingly isomorphic iff these forms are equal.
    """
    return tuple(
        sorted(tuple(sorted(facet.names())) for facet in complex_.facets)
    )


def equal_as_projections(
    left: SimplicialComplex, right: SimplicialComplex
) -> bool:
    """Equality of projection complexes up to renaming of the opaque values.

    Only meaningful for disjoint-union-of-simplices complexes (consistency
    projections); raises ``ValueError`` otherwise so that misuse is loud.
    """
    for complex_ in (left, right):
        seen: dict[Vertex, int] = {}
        for facet in complex_.facets:
            for vertex in facet.vertices:
                seen[vertex] = seen.get(vertex, 0) + 1
        if any(count > 1 for count in seen.values()):
            raise ValueError(
                "equal_as_projections requires disjoint-union complexes"
            )
    return facet_name_partition(left) == facet_name_partition(right)


__all__ = [
    "are_isomorphic",
    "are_isomorphic_chromatic",
    "equal_as_projections",
    "facet_name_partition",
    "iter_isomorphisms",
]
