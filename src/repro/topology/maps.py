"""Vertex maps and simplicial maps between chromatic complexes.

The paper's solvability notions are all phrased as the existence of a
simplicial map with side conditions:

* *name-preserving*: ``delta((i, x)) = (i, y)`` -- the name never changes;
* *name-independent*: the output value depends only on the input value,
  never on the name (``delta((i, x)) = (i, f(x))`` for a single ``f``).

This module implements a :class:`VertexMap` value object with validity
checks, plus backtracking searches for simplicial maps under either side
condition.  The searches are exhaustive and intended for the small complexes
of the paper (``n <= 8`` or so); the core library uses the much faster
partition-refinement criterion in :mod:`repro.core.solvability` and falls
back on these searches in tests to validate the criterion (Lemma 3.5).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from .complex import SimplicialComplex
from .simplex import Simplex, Vertex, as_vertex


class VertexMap:
    """A total map between the vertex sets of two complexes."""

    __slots__ = ("source", "target", "_mapping")

    def __init__(
        self,
        source: SimplicialComplex,
        target: SimplicialComplex,
        mapping: Mapping[Vertex | tuple[int, Hashable], Vertex | tuple[int, Hashable]],
    ):
        self.source = source
        self.target = target
        self._mapping = {as_vertex(k): as_vertex(v) for k, v in mapping.items()}
        missing = source.vertices() - self._mapping.keys()
        if missing:
            raise ValueError(f"mapping is not total; missing {sorted(missing)}")
        stray = {
            v for v in self._mapping.values() if v not in target.vertices()
        }
        if stray:
            raise ValueError(f"mapping leaves the target vertex set: {sorted(stray)}")

    def __call__(self, vertex: Vertex | tuple[int, Hashable]) -> Vertex:
        return self._mapping[as_vertex(vertex)]

    def __getitem__(self, vertex: Vertex | tuple[int, Hashable]) -> Vertex:
        return self._mapping[as_vertex(vertex)]

    def items(self) -> Iterable[tuple[Vertex, Vertex]]:
        return self._mapping.items()

    def image_of(self, simplex: Simplex) -> Simplex:
        """The image of a simplex (as a vertex set; may collapse dimension)."""
        return Simplex(self._mapping[v] for v in simplex.vertices)

    # ------------------------------------------------------------------
    # Properties used by the paper
    # ------------------------------------------------------------------
    def is_simplicial(self) -> bool:
        """True when every source simplex maps onto a target simplex.

        It suffices to check facets: faces of facets map to subsets of the
        facet images, and complexes are closed under taking faces.
        """
        return all(
            self.image_of(facet) in self.target for facet in self.source.facets
        )

    def is_name_preserving(self) -> bool:
        return all(src.name == dst.name for src, dst in self._mapping.items())

    def is_name_independent(self) -> bool:
        """The output value is a function of the input value alone."""
        value_map: dict[Hashable, Hashable] = {}
        for src, dst in self._mapping.items():
            if src.value in value_map:
                if value_map[src.value] != dst.value:
                    return False
            else:
                value_map[src.value] = dst.value
        return True

    def composed_with(self, inner: "VertexMap") -> "VertexMap":
        """``self o inner`` (apply ``inner`` first)."""
        if inner.target is not self.source and not (
            inner.target.vertices() <= self.source.vertices()
        ):
            raise ValueError("maps are not composable")
        return VertexMap(
            inner.source,
            self.target,
            {v: self._mapping[w] for v, w in inner.items()},
        )


# ----------------------------------------------------------------------
# Searching for simplicial maps
# ----------------------------------------------------------------------
def iter_simplicial_maps(
    source: SimplicialComplex,
    target: SimplicialComplex,
    *,
    name_preserving: bool = True,
    name_independent: bool = False,
) -> Iterator[VertexMap]:
    """Yield every simplicial map from ``source`` to ``target``.

    The search assigns images vertex by vertex and prunes as soon as some
    fully-assigned source facet fails to land on a target simplex.  With
    ``name_preserving=True`` the candidate images of a vertex ``(i, x)`` are
    only the target vertices named ``i``, which keeps the branching factor
    small for the paper's complexes.
    """
    source_vertices = sorted(
        source.vertices(), key=lambda v: (v.name, repr(v.value))
    )
    if not source_vertices:
        yield VertexMap(source, target, {})
        return

    target_vertices = sorted(
        target.vertices(), key=lambda v: (v.name, repr(v.value))
    )
    by_name: dict[int, list[Vertex]] = {}
    for vertex in target_vertices:
        by_name.setdefault(vertex.name, []).append(vertex)

    facets = [facet.sorted_vertices() for facet in source.facets]
    # For pruning: facets indexed by the position of their last vertex in the
    # assignment order, so a facet is checked as soon as it is fully assigned.
    position = {v: i for i, v in enumerate(source_vertices)}
    facets_by_last: dict[int, list[list[Vertex]]] = {}
    for facet in facets:
        last = max(position[v] for v in facet)
        facets_by_last.setdefault(last, []).append(facet)

    assignment: dict[Vertex, Vertex] = {}
    value_choice: dict[Hashable, Hashable] = {}

    def candidates(vertex: Vertex) -> list[Vertex]:
        if name_preserving:
            pool = by_name.get(vertex.name, [])
        else:
            pool = target_vertices
        if name_independent and vertex.value in value_choice:
            forced = value_choice[vertex.value]
            pool = [w for w in pool if w.value == forced]
        return pool

    def consistent_after(index: int) -> bool:
        for facet in facets_by_last.get(index, []):
            image = Simplex(assignment[v] for v in facet)
            if image not in target:
                return False
        return True

    def extend(index: int) -> Iterator[VertexMap]:
        if index == len(source_vertices):
            yield VertexMap(source, target, dict(assignment))
            return
        vertex = source_vertices[index]
        for image in candidates(vertex):
            assignment[vertex] = image
            fresh_value = name_independent and vertex.value not in value_choice
            if fresh_value:
                value_choice[vertex.value] = image.value
            if consistent_after(index):
                yield from extend(index + 1)
            if fresh_value:
                del value_choice[vertex.value]
            del assignment[vertex]

    yield from extend(0)


def find_simplicial_map(
    source: SimplicialComplex,
    target: SimplicialComplex,
    *,
    name_preserving: bool = True,
    name_independent: bool = False,
) -> VertexMap | None:
    """First simplicial map found, or ``None`` when none exists."""
    for mapping in iter_simplicial_maps(
        source,
        target,
        name_preserving=name_preserving,
        name_independent=name_independent,
    ):
        return mapping
    return None


def exists_simplicial_map(
    source: SimplicialComplex,
    target: SimplicialComplex,
    *,
    name_preserving: bool = True,
    name_independent: bool = False,
) -> bool:
    """Existence test for a simplicial map with the given side conditions."""
    return (
        find_simplicial_map(
            source,
            target,
            name_preserving=name_preserving,
            name_independent=name_independent,
        )
        is not None
    )


def unique_name_preserving_map(
    source: SimplicialComplex, target: SimplicialComplex
) -> VertexMap | None:
    """The unique name-preserving vertex map, when target names are unique.

    When every name appears on exactly one target vertex (true for any
    single facet ``tau`` of a chromatic complex and for its projection
    ``pi(tau)``), a name-preserving vertex map is completely determined:
    ``(i, x) -> (i, tau(i))``.  Returns ``None`` when some source name is
    missing from the target or a target name is ambiguous.
    """
    by_name: dict[int, list[Vertex]] = {}
    for vertex in target.vertices():
        by_name.setdefault(vertex.name, []).append(vertex)
    mapping: dict[Vertex, Vertex] = {}
    for vertex in source.vertices():
        images = by_name.get(vertex.name, [])
        if len(images) != 1:
            return None
        mapping[vertex] = images[0]
    return VertexMap(source, target, mapping)
