"""Chromatic vertices and simplices.

The paper works exclusively with *chromatic* simplicial complexes: every
vertex is a pair ``(name, value)`` where ``name`` identifies a processing
node (an integer in ``[n]``) and ``value`` is an arbitrary hashable payload
(an input, a knowledge structure, a random bit-string, an output value, ...).
A simplex is a non-empty set of vertices; in a chromatic simplex all names
are pairwise distinct.

This module provides the two foundational types:

* :class:`Vertex` -- an immutable ``(name, value)`` pair.
* :class:`Simplex` -- an immutable set of vertices with chromatic helpers.

Both types are hashable so they can be used as members of sets and keys of
dictionaries, which is how :class:`repro.topology.complex.SimplicialComplex`
stores them.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, NamedTuple


class Vertex(NamedTuple):
    """A chromatic vertex ``(name, value)``.

    ``name`` is the identity ("color") of a processing node and ``value`` is
    the payload the node holds.  Being a :class:`~typing.NamedTuple`, a
    :class:`Vertex` compares equal to the plain tuple ``(name, value)``,
    which keeps literal test fixtures light-weight.
    """

    name: int
    value: Hashable

    def with_value(self, value: Hashable) -> "Vertex":
        """Return a vertex with the same name but a different value."""
        return Vertex(self.name, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.name}:{self.value!r})"


def as_vertex(item: "Vertex | tuple[int, Hashable]") -> Vertex:
    """Coerce a ``(name, value)`` pair into a :class:`Vertex`."""
    if isinstance(item, Vertex):
        return item
    name, value = item
    return Vertex(int(name), value)


class Simplex:
    """An immutable, non-empty set of chromatic vertices.

    The simplex does not require chromaticity (distinct names) at
    construction time -- :meth:`is_chromatic` reports it -- but every complex
    built by this library from paper constructions is chromatic and the
    complex constructors validate it.

    Simplices are value objects: equality and hashing are structural, and a
    canonical sorted vertex order is kept for deterministic iteration and
    printing.
    """

    __slots__ = ("_vertices", "_hash")

    def __init__(self, vertices: Iterable[Vertex | tuple[int, Hashable]]):
        coerced = frozenset(as_vertex(v) for v in vertices)
        if not coerced:
            raise ValueError("a simplex must contain at least one vertex")
        self._vertices = coerced
        self._hash = hash(coerced)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> frozenset[Vertex]:
        """The vertex set of the simplex."""
        return self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.sorted_vertices())

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex: object) -> bool:
        if isinstance(vertex, tuple) and not isinstance(vertex, Vertex):
            try:
                vertex = as_vertex(vertex)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return False
        return vertex in self._vertices

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Simplex):
            return self._vertices == other._vertices
        if isinstance(other, frozenset):
            return self._vertices == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(v) for v in self.sorted_vertices())
        return f"{{{inner}}}"

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """``dim(sigma) = |V(sigma)| - 1`` (a single vertex has dimension 0)."""
        return len(self._vertices) - 1

    def sorted_vertices(self) -> list[Vertex]:
        """Vertices in a canonical (name, repr-of-value) order."""
        return sorted(self._vertices, key=_vertex_sort_key)

    def faces(self, *, proper: bool = False) -> Iterator["Simplex"]:
        """Yield every non-empty face; ``proper=True`` skips the simplex itself.

        The number of faces is ``2^(dim+1) - 1``, so this is only meant for
        the small simplices that appear in the paper's constructions.
        """
        verts = self.sorted_vertices()
        n = len(verts)
        for mask in range(1, 1 << n):
            if proper and mask == (1 << n) - 1:
                continue
            yield Simplex(verts[i] for i in range(n) if mask >> i & 1)

    def is_face_of(self, other: "Simplex") -> bool:
        """True when this simplex is a (not necessarily proper) face of ``other``."""
        return self._vertices <= other._vertices

    # ------------------------------------------------------------------
    # Chromatic structure
    # ------------------------------------------------------------------
    def names(self) -> frozenset[int]:
        """The set of names (colors) carried by the vertices."""
        return frozenset(v.name for v in self._vertices)

    def is_chromatic(self) -> bool:
        """True when all vertex names are pairwise distinct."""
        return len(self.names()) == len(self._vertices)

    def value_of(self, name: int) -> Hashable:
        """Value held by the vertex named ``name`` (chromatic simplices only)."""
        for vertex in self._vertices:
            if vertex.name == name:
                return vertex.value
        raise KeyError(f"no vertex named {name} in {self!r}")

    def value_partition(self) -> list[frozenset[int]]:
        """Group names by equal value (the blocks of the paper's ``pi``).

        Returns the blocks of the partition of ``names()`` where two names are
        in the same block iff their vertices carry equal values.  This is the
        facet structure of the consistency projection ``pi(sigma)``.
        """
        by_value: dict[Hashable, set[int]] = {}
        for vertex in self._vertices:
            by_value.setdefault(vertex.value, set()).add(vertex.name)
        return sorted(
            (frozenset(block) for block in by_value.values()),
            key=lambda block: sorted(block),
        )

    def rename(self, permutation: dict[int, int]) -> "Simplex":
        """Apply a name permutation: vertex ``(i, v)`` becomes ``(perm[i], v)``."""
        return Simplex(Vertex(permutation[v.name], v.value) for v in self._vertices)


def _vertex_sort_key(vertex: Vertex) -> tuple[int, str]:
    return (vertex.name, repr(vertex.value))
