"""Port-number assignments for the message-passing clique.

Each node privately labels its ``n-1`` incident edges with distinct port
numbers ``1..n-1`` (Section 2.1).  A :class:`PortAssignment` records, for
every node, which node sits behind each of its ports.  Port numbers at the
two ends of an edge are uncorrelated.

Three constructors matter:

* :func:`round_robin_assignment` -- the canonical benign labeling
  ``port j of i -> (i + j) mod n``;
* :func:`random_assignment` -- an adversary-free random labeling;
* :func:`adversarial_assignment` -- the Lemma 4.3 construction: when every
  group size is divisible by ``g``, ports are numbered so that the cyclic
  shift ``f(m*g + r) = m*g + (r+1 mod g)`` preserves both sources and ports,
  forcing every knowledge class to be a union of ``f``-orbits (size
  multiples of ``g``), which kills leader election when ``g > 1``.

Erratum note: the paper states the construction as
``((i+j) mod g + ceil(i/g)*g + ceil(j/g)*g) mod n``; with ``ceil(i/g)`` the
map is not a valid port assignment (node 1 gets itself as a neighbour
already for ``g=2, n=4``).  With ``floor(i/g)`` both required properties
hold -- validity and ``f``-equivariance -- and the test suite checks them
for a range of ``(n, g)``; we implement the repaired formula.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence


class PortAssignment:
    """For every node, the neighbour behind each port.

    ``neighbour(i, j)`` is the node connected to node ``i`` by the edge
    labeled ``j`` at ``i``, with ports ``1..n-1`` (paper numbering).
    """

    __slots__ = ("_table",)

    def __init__(self, table: Sequence[Sequence[int]]):
        n = len(table)
        if n < 1:
            raise ValueError("need at least one node")
        cleaned: list[tuple[int, ...]] = []
        for i, row in enumerate(table):
            row = tuple(int(x) for x in row)
            if len(row) != n - 1:
                raise ValueError(
                    f"node {i}: expected {n - 1} ports, got {len(row)}"
                )
            if sorted(row) != sorted(set(range(n)) - {i}):
                raise ValueError(
                    f"node {i}: ports {row} are not a bijection onto the "
                    f"other {n - 1} nodes"
                )
            cleaned.append(row)
        self._table = tuple(cleaned)

    @property
    def n(self) -> int:
        return len(self._table)

    def neighbour(self, node: int, port: int) -> int:
        """The node behind ``port`` (1-based) of ``node`` -- ``pi_node(port)``."""
        if not 1 <= port <= self.n - 1:
            raise ValueError(f"port must be in 1..{self.n - 1}, got {port}")
        return self._table[node][port - 1]

    def neighbours(self, node: int) -> tuple[int, ...]:
        """All neighbours of ``node`` in port order (ports ``1..n-1``)."""
        return self._table[node]

    def port_to(self, node: int, target: int) -> int:
        """The port of ``node`` whose edge leads to ``target`` (1-based)."""
        return self._table[node].index(target) + 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PortAssignment):
            return self._table == other._table
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._table)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortAssignment(n={self.n})"


def round_robin_assignment(n: int) -> PortAssignment:
    """The canonical labeling: port ``j`` of node ``i`` leads to ``(i+j) mod n``."""
    if n < 1:
        raise ValueError("need n >= 1")
    return PortAssignment(
        [[(i + j) % n for j in range(1, n)] for i in range(n)]
    )


def random_assignment(n: int, rng: random.Random | int | None = None) -> PortAssignment:
    """Independently shuffle each node's port labels."""
    if not isinstance(rng, random.Random):
        rng = random.Random(rng)
    table: list[list[int]] = []
    for i in range(n):
        others = [x for x in range(n) if x != i]
        rng.shuffle(others)
        table.append(others)
    return PortAssignment(table)


def adversarial_assignment(group_sizes: Iterable[int]) -> PortAssignment:
    """The Lemma 4.3 construction for ``g = gcd(group_sizes)``.

    Nodes are assumed numbered so that the first ``n_1`` share source 1, the
    next ``n_2`` share source 2, etc. (the layout produced by
    :meth:`RandomnessConfiguration.from_group_sizes`).  Port ``j`` of node
    ``i`` leads to ``((i+j) mod g + floor(i/g)*g + ceil(j/g)*g) mod n``.
    """
    sizes = tuple(group_sizes)
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"invalid group sizes {sizes}")
    n = sum(sizes)
    g = math.gcd(*sizes)
    if n == 1:
        return PortAssignment([[]])
    table = [
        [((i + j) % g + (i // g) * g + math.ceil(j / g) * g) % n for j in range(1, n)]
        for i in range(n)
    ]
    return PortAssignment(table)


def shift_symmetry(n: int, g: int) -> dict[int, int]:
    """The Lemma 4.3 symmetry ``f``: cyclic shift inside each ``g``-block.

    ``f(m*g + r) = m*g + ((r + 1) mod g)``.  Under the adversarial
    assignment, ``f`` preserves sources (when ``g`` divides every group
    size) and ports: ``neighbour(f(i), j) = f(neighbour(i, j))``.
    """
    if n % g:
        raise ValueError(f"g={g} must divide n={n}")
    mapping = {}
    for i in range(n):
        m, r = divmod(i, g)
        mapping[i] = m * g + (r + 1) % g
    return mapping


def is_equivariant(ports: PortAssignment, symmetry: dict[int, int]) -> bool:
    """Check ``neighbour(f(i), j) == f(neighbour(i, j))`` for all ``i, j``."""
    n = ports.n
    for i in range(n):
        for j in range(1, n):
            if ports.neighbour(symmetry[i], j) != symmetry[ports.neighbour(i, j)]:
                return False
    return True


__all__ = [
    "PortAssignment",
    "adversarial_assignment",
    "is_equivariant",
    "random_assignment",
    "round_robin_assignment",
    "shift_symmetry",
]
