"""Communication models: blackboard and port-numbered message passing.

Both models are deterministic maps from realizations (the random bits every
node received) to knowledge (Section 2.2), which is the foundation of the
``P(t) <-> R(t)`` facet isomorphism the framework rests on.
"""

from .base import CommunicationModel
from .blackboard import BlackboardModel, bitstring_partition
from .graph import GraphTopology
from .graph_model import GraphMessagePassingModel
from .knowledge import BOTTOM_ID, KnowledgeInterner, knowledge_partition
from .message_passing import MessagePassingModel
from .ports import (
    PortAssignment,
    adversarial_assignment,
    is_equivariant,
    random_assignment,
    round_robin_assignment,
    shift_symmetry,
)

__all__ = [
    "BOTTOM_ID",
    "BlackboardModel",
    "CommunicationModel",
    "GraphMessagePassingModel",
    "GraphTopology",
    "KnowledgeInterner",
    "MessagePassingModel",
    "PortAssignment",
    "adversarial_assignment",
    "bitstring_partition",
    "is_equivariant",
    "knowledge_partition",
    "random_assignment",
    "round_robin_assignment",
    "shift_symmetry",
]
