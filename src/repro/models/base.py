"""Common interface of the two communication models.

Both models are deterministic functions of the realization: fix the random
bit strings received by the nodes and the knowledge of every node at every
time is determined (this is the substance of the facet isomorphism ``h``
between ``P(t)`` and ``R(t)``, Section 3.3).  The interface therefore maps
realizations to knowledge, and everything downstream -- consistency
partitions, projections, solvability -- is model-agnostic.
"""

from __future__ import annotations

import abc

from ..randomness.realizations import NodeRealization
from .knowledge import KnowledgeInterner, knowledge_partition


class CommunicationModel(abc.ABC):
    """A synchronous, fault-free, anonymous full-information model."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need n >= 1")
        self.n = n
        self.interner = KnowledgeInterner()

    @abc.abstractmethod
    def knowledge_ids(self, realization: NodeRealization) -> tuple[int, ...]:
        """Interned ``K_i(t)`` for every node, ``t`` = realization length."""

    def knowledge_trace(
        self, realization: NodeRealization
    ) -> list[tuple[int, ...]]:
        """``K_i(s)`` for every node and every time ``s = 0..t``."""
        t = self._realization_length(realization)
        return [
            self.knowledge_ids(tuple(bits[:s] for bits in realization))
            for s in range(t + 1)
        ]

    def partition(self, realization: NodeRealization) -> list[frozenset[int]]:
        """Blocks of the consistency relation ``~t`` -- facets of ``pi~(rho)``."""
        return knowledge_partition(self.knowledge_ids(realization))

    def _realization_length(self, realization: NodeRealization) -> int:
        if len(realization) != self.n:
            raise ValueError(
                f"realization has {len(realization)} strings, model has n={self.n}"
            )
        lengths = {len(bits) for bits in realization}
        if len(lengths) > 1:
            raise ValueError(f"ragged realization lengths {sorted(lengths)}")
        return lengths.pop() if lengths else 0


__all__ = ["CommunicationModel"]
