"""The anonymous port-numbered message-passing clique (Section 2.1, Eq. 2).

Nodes are connected as ``K_n``; node ``i`` receives, through its port ``j``,
the previous-round knowledge of the node ``pi_i(j)`` behind that port.  The
received tuple is ordered by the node's *private* port numbers, so -- unlike
the blackboard -- two nodes with identical randomness can acquire different
knowledge when their ports face differently-behaving neighbours (footnote 5
of the paper: this only helps symmetry breaking).
"""

from __future__ import annotations

from ..randomness.realizations import NodeRealization
from .base import CommunicationModel
from .knowledge import BOTTOM_ID
from .ports import PortAssignment


class MessagePassingModel(CommunicationModel):
    """Knowledge evolution on the port-numbered clique."""

    def __init__(self, ports: PortAssignment):
        super().__init__(ports.n)
        self.ports = ports

    def knowledge_ids(self, realization: NodeRealization) -> tuple[int, ...]:
        t = self._realization_length(realization)
        current = [BOTTOM_ID] * self.n
        for round_index in range(1, t + 1):
            previous = current
            current = []
            for node in range(self.n):
                received = [
                    previous[self.ports.neighbour(node, port)]
                    for port in range(1, self.n)
                ]
                current.append(
                    self.interner.message_passing_update(
                        previous[node],
                        realization[node][round_index - 1],
                        received,
                    )
                )
        return tuple(current)


__all__ = ["MessagePassingModel"]
