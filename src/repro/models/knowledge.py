"""Hash-consed knowledge structures.

Section 2.2 defines a node's knowledge recursively:

* ``K_i(0) = bottom`` (input-free tasks have no inputs);
* blackboard (Eq. 1):
  ``K_i(t) = (K_i(t-1), X_i(t), {K_j(t-1) : j != i})`` where the third
  component is the *multiset* of everyone's previous knowledge (the board
  content, lexicographically ordered);
* message passing (Eq. 2):
  ``K_i(t) = (K_i(t-1), X_i(t), (K_{pi_i(1)}(t-1), ..., K_{pi_i(n-1)}(t-1)))``
  where the third component is the *tuple* of previous knowledge indexed by
  the node's private port numbers.

The only property the framework ever uses is *structural equality* of
knowledge (``K_i(t) = K_j(t)`` defines the consistency relation ``i ~t j``).
We therefore intern every distinct structure to a small integer id; equal
ids <=> equal structures, and the interning doubles as a compact
content-addressed encoding of the unbounded full-information messages.
"""

from __future__ import annotations

from typing import Hashable, Sequence

#: The knowledge of every node at time 0 (no inputs).
BOTTOM_ID = 0


class KnowledgeInterner:
    """Bidirectional map between knowledge structures and integer ids.

    Ids are allocated deterministically in first-seen order.  Structures are
    canonical nested tuples over previously-allocated ids, so two interners
    fed the same sequence of updates allocate identical tables.
    """

    __slots__ = ("_by_structure", "_by_id")

    def __init__(self) -> None:
        bottom = ("bottom",)
        self._by_structure: dict[tuple, int] = {bottom: BOTTOM_ID}
        self._by_id: list[tuple] = [bottom]

    def __len__(self) -> int:
        return len(self._by_id)

    def intern(self, structure: tuple) -> int:
        """Id of ``structure``, allocating one if new."""
        existing = self._by_structure.get(structure)
        if existing is not None:
            return existing
        new_id = len(self._by_id)
        self._by_structure[structure] = new_id
        self._by_id.append(structure)
        return new_id

    def structure(self, knowledge_id: int) -> tuple:
        """The structure behind an id (inverse of :meth:`intern`)."""
        return self._by_id[knowledge_id]

    def expand(self, knowledge_id: int) -> tuple:
        """Fully expand an id into a nested tuple with no internal ids.

        Reconstructs the paper's literal knowledge terms, e.g.
        ``('bb', ('bottom',), 1, (('bottom',), ('bottom',)))``.  Exponential
        in ``t`` in the worst case; only for printing and small tests.
        """
        structure = self._by_id[knowledge_id]
        if (
            len(structure) == 4
            and structure[0] in ("bb", "mp")
            and isinstance(structure[1], int)
        ):
            tag, prev, bit, others = structure
            return (
                tag,
                self.expand(prev),
                bit,
                tuple(self.expand(o) for o in others),
            )
        # Foreign structures (protocol tags, test payloads) are returned
        # verbatim; they are already self-describing.
        return structure

    # ------------------------------------------------------------------
    # The two update rules
    # ------------------------------------------------------------------
    def blackboard_update(
        self, prev_id: int, bit: int, board_prev_ids: Sequence[int]
    ) -> int:
        """Eq. (1): append own bit and the board's multiset of knowledge.

        ``board_prev_ids`` must be the previous-round knowledge of *all other*
        nodes; the multiset semantics (board order is lexicographic, hence
        carries no information beyond multiplicity) is realized by sorting.
        """
        return self.intern(("bb", prev_id, bit, tuple(sorted(board_prev_ids))))

    def message_passing_update(
        self, prev_id: int, bit: int, port_prev_ids: Sequence[int]
    ) -> int:
        """Eq. (2): append own bit and the port-ordered tuple of knowledge."""
        return self.intern(("mp", prev_id, bit, tuple(port_prev_ids)))

    def canonical_key(self, knowledge_id: int) -> Hashable:
        """A total order on knowledge *content* (not on allocation order).

        Protocols that pick "the minimum" knowledge class must not depend on
        interner allocation order (which can differ between runs feeding
        updates in different orders); this key orders ids by the canonical
        string of their fully-expanded structure.
        """
        return repr(self.expand(knowledge_id))


def knowledge_partition(knowledge_ids: Sequence[int]) -> list[frozenset[int]]:
    """Blocks of node indices with equal knowledge -- the facets of ``pi~``.

    The consistency relation ``i ~t j`` (Eq. 4/5) is an equivalence, so the
    projection ``pi~(rho)`` is the disjoint union of one simplex per block.
    """
    by_id: dict[int, set[int]] = {}
    for node, kid in enumerate(knowledge_ids):
        by_id.setdefault(kid, set()).add(node)
    return sorted(
        (frozenset(block) for block in by_id.values()),
        key=lambda block: sorted(block),
    )


__all__ = ["BOTTOM_ID", "KnowledgeInterner", "knowledge_partition"]
