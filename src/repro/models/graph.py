"""Anonymous port-numbered graphs (the conclusion's suggested extension).

The paper's message-passing model is the clique ``K_n``; its conclusion
proposes "extending the communication model to networks with arbitrary
structure".  A :class:`GraphTopology` is an undirected connected graph
where every node privately labels its incident edges with ports
``1..deg``; the clique's :class:`~repro.models.ports.PortAssignment` is
the special case of :func:`GraphTopology.complete`.

Anonymous computation on such graphs is classical territory (Angluin 1980;
Yamashita-Kameda 1996; Boldi et al. 1996 -- all cited by the paper), and
two cited results become checkable here:

* leader election on an anonymous ring is impossible without randomness
  (Angluin), and
* leader election on ``K_{m,n}`` is possible iff ``gcd(m, n) = 1``
  (Codenotti et al., as quoted in the paper's related work).

For small graphs the *worst case over all port labelings* is computed by
exhaustive enumeration via :meth:`GraphTopology.iter_labelings`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

import networkx as nx


class GraphTopology:
    """An undirected connected graph with per-node ordered neighbour lists.

    ``neighbours[i]`` is node ``i``'s neighbour behind each of its ports,
    in port order (port ``p`` is ``neighbours[i][p-1]``).  The ordering is
    the node's private labeling; re-orderings of the same underlying graph
    are different topologies for the knowledge dynamics.
    """

    __slots__ = ("_neighbours",)

    def __init__(self, neighbours: Sequence[Sequence[int]]):
        n = len(neighbours)
        if n < 1:
            raise ValueError("need at least one node")
        cleaned: list[tuple[int, ...]] = []
        for i, row in enumerate(neighbours):
            row = tuple(int(x) for x in row)
            if i in row:
                raise ValueError(f"node {i} has a self-loop")
            if len(set(row)) != len(row):
                raise ValueError(f"node {i} has duplicate edges {row}")
            if any(not 0 <= x < n for x in row):
                raise ValueError(f"node {i} references unknown nodes {row}")
            cleaned.append(row)
        for i, row in enumerate(cleaned):
            for j in row:
                if i not in cleaned[j]:
                    raise ValueError(
                        f"edge {i}-{j} is not symmetric in the adjacency"
                    )
        self._neighbours = tuple(cleaned)
        if n > 1 and not self._connected():
            raise ValueError("graph must be connected")

    def _connected(self) -> bool:
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nbr in self._neighbours[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return len(seen) == self.n

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._neighbours)

    def degree(self, node: int) -> int:
        """Number of incident edges (= number of ports) of ``node``."""
        return len(self._neighbours[node])

    def neighbours(self, node: int) -> tuple[int, ...]:
        """Ordered neighbours of ``node`` (index p-1 = port p)."""
        return self._neighbours[node]

    def neighbour(self, node: int, port: int) -> int:
        """The node behind ``port`` (1-based) of ``node``."""
        if not 1 <= port <= self.degree(node):
            raise ValueError(
                f"node {node} has ports 1..{self.degree(node)}, got {port}"
            )
        return self._neighbours[node][port - 1]

    def port_to(self, node: int, target: int) -> int:
        """The port of ``node`` whose edge leads to ``target`` (1-based)."""
        return self._neighbours[node].index(target) + 1

    def edges(self) -> set[frozenset[int]]:
        """The undirected edge set as frozen pairs."""
        return {
            frozenset((i, j))
            for i, row in enumerate(self._neighbours)
            for j in row
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GraphTopology):
            return self._neighbours == other._neighbours
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._neighbours)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphTopology(n={self.n}, edges={len(self.edges())})"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, graph: "nx.Graph") -> "GraphTopology":
        """Adopt a networkx graph; ports follow sorted neighbour order."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        return cls(
            [
                tuple(sorted(index[m] for m in graph.neighbors(node)))
                for node in nodes
            ]
        )

    @classmethod
    def ring(cls, n: int) -> "GraphTopology":
        """The anonymous ring ``C_n`` (Angluin's classical arena)."""
        if n < 3:
            raise ValueError("a ring needs n >= 3")
        return cls(
            [((i - 1) % n, (i + 1) % n) for i in range(n)]
        )

    @classmethod
    def path(cls, n: int) -> "GraphTopology":
        """The path ``P_n``."""
        if n < 1:
            raise ValueError("need n >= 1")
        if n == 1:
            return cls([()])
        rows: list[tuple[int, ...]] = [(1,)]
        for i in range(1, n - 1):
            rows.append((i - 1, i + 1))
        rows.append((n - 2,))
        return cls(rows)

    @classmethod
    def star(cls, n: int) -> "GraphTopology":
        """The star ``S_n``: node 0 is the hub, nodes 1..n-1 the leaves."""
        if n < 2:
            raise ValueError("a star needs n >= 2")
        return cls([tuple(range(1, n))] + [(0,)] * (n - 1))

    @classmethod
    def complete(cls, n: int) -> "GraphTopology":
        """The clique ``K_n`` with round-robin ports."""
        return cls(
            [tuple((i + j) % n for j in range(1, n)) for i in range(n)]
        )

    @classmethod
    def complete_bipartite(cls, m: int, n: int) -> "GraphTopology":
        """``K_{m,n}``: nodes ``0..m-1`` on one side, ``m..m+n-1`` on the
        other (the Codenotti et al. arena cited by the paper)."""
        if m < 1 or n < 1:
            raise ValueError("both sides need at least one node")
        left = [tuple(range(m, m + n))] * m
        right = [tuple(range(m))] * n
        return cls(left + right)

    # ------------------------------------------------------------------
    # Labelings (for worst-case sweeps)
    # ------------------------------------------------------------------
    def relabel(
        self, orders: Sequence[Sequence[int]]
    ) -> "GraphTopology":
        """Reorder each node's ports; ``orders[i]`` permutes node i's row."""
        rows = []
        for i, order in enumerate(orders):
            row = self._neighbours[i]
            if sorted(order) != list(range(len(row))):
                raise ValueError(
                    f"order {order} is not a permutation of node {i}'s ports"
                )
            rows.append(tuple(row[p] for p in order))
        return GraphTopology(rows)

    def labeling_count(self) -> int:
        """Number of distinct port labelings: ``prod_i deg(i)!``."""
        total = 1
        for i in range(self.n):
            for f in range(2, self.degree(i) + 1):
                total *= f
        return total

    def iter_labelings(
        self, *, limit: int = 1 << 16
    ) -> Iterator["GraphTopology"]:
        """All port labelings of the underlying graph (guarded by size)."""
        if self.labeling_count() > limit:
            raise ValueError(
                f"{self.labeling_count()} labelings exceed the limit {limit}"
            )
        per_node: list[Iterable[tuple[int, ...]]] = [
            itertools.permutations(range(self.degree(i)))
            for i in range(self.n)
        ]
        for orders in itertools.product(*per_node):
            yield self.relabel(orders)

    def to_networkx(self) -> "nx.Graph":
        """Export the underlying (unlabeled) graph to networkx."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(tuple(edge) for edge in self.edges())
        return graph


__all__ = ["GraphTopology"]
