"""The anonymous blackboard model (Section 2.1, Eq. 1).

Every node appends its full knowledge to a shared board each round; at the
end of the round every node sees the entire board as an unordered multiset
(messages carry no origin and appear in lexicographic order).

Two implementations of the consistency structure are provided:

* :meth:`BlackboardModel.knowledge_ids` -- the literal Eq. (1) recursion on
  interned knowledge structures;
* :func:`bitstring_partition` -- the fast path exploiting the paper's
  observation (proof of Theorem 4.1) that on a blackboard, equality of
  knowledge is equivalent to equality of received bit strings, because the
  board content is common to everyone.

The test suite checks the two agree on exhaustive small realizations; the
probability engines use the fast path.
"""

from __future__ import annotations

from ..randomness.realizations import NodeRealization
from .base import CommunicationModel
from .knowledge import BOTTOM_ID


class BlackboardModel(CommunicationModel):
    """Knowledge evolution on the shared blackboard."""

    def knowledge_ids(self, realization: NodeRealization) -> tuple[int, ...]:
        t = self._realization_length(realization)
        current = [BOTTOM_ID] * self.n
        for round_index in range(1, t + 1):
            previous = current
            current = []
            for node in range(self.n):
                others = [
                    previous[j] for j in range(self.n) if j != node
                ]
                current.append(
                    self.interner.blackboard_update(
                        previous[node],
                        realization[node][round_index - 1],
                        others,
                    )
                )
        return tuple(current)


def bitstring_partition(realization: NodeRealization) -> list[frozenset[int]]:
    """Fast consistency partition: group nodes by their full bit string.

    Valid for the blackboard model only: the board content is identical for
    all nodes, so ``K_i(t) = K_j(t)`` iff ``x_i(1..t) = x_j(1..t)``.
    """
    by_bits: dict[tuple[int, ...], set[int]] = {}
    for node, bits in enumerate(realization):
        by_bits.setdefault(tuple(bits), set()).add(node)
    return sorted(
        (frozenset(block) for block in by_bits.values()),
        key=lambda block: sorted(block),
    )


__all__ = ["BlackboardModel", "bitstring_partition"]
