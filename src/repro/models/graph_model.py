"""Knowledge evolution on anonymous port-numbered graphs.

Generalizes Eq. (2) from the clique to arbitrary connected topologies,
with a semantic switch that matters off the clique:

* ``include_back_ports=False`` (the paper's Eq. 2): node ``i`` receives,
  on its port ``p``, the previous knowledge of the neighbour behind ``p``.
* ``include_back_ports=True`` (the classical anonymous-network model of
  Yamashita-Kameda / Boldi et al.): the sender may address each port
  individually, so the receiver additionally learns *which of the
  sender's ports faces it*; the received item on port ``p`` becomes the
  pair ``(K_neighbour(t-1), back-port)``.

On the clique the two semantics yield the same solvability
characterization (Theorem 4.2 is robust to the switch -- tested), but on
general graphs the back-ports are essential: e.g. the two sides of
``K_{m,n}`` can only be broken apart by port information travelling with
the messages.  The cited Codenotti et al. result (leader election on
``K_{m,n}`` iff ``gcd(m,n) = 1``) is reproduced under the classical
semantics.
"""

from __future__ import annotations

from ..randomness.realizations import NodeRealization
from .base import CommunicationModel
from .graph import GraphTopology
from .knowledge import BOTTOM_ID


class GraphMessagePassingModel(CommunicationModel):
    """Full-information knowledge on an anonymous port-numbered graph."""

    def __init__(
        self, topology: GraphTopology, *, include_back_ports: bool = False
    ):
        super().__init__(topology.n)
        self.topology = topology
        self.include_back_ports = include_back_ports
        # Static back-port table: back[i][p-1] = port of neighbour(i, p)
        # that faces i.
        self._back = tuple(
            tuple(
                topology.port_to(nbr, node)
                for nbr in topology.neighbours(node)
            )
            for node in range(topology.n)
        )

    def knowledge_ids(self, realization: NodeRealization) -> tuple[int, ...]:
        t = self._realization_length(realization)
        current = [BOTTOM_ID] * self.n
        for round_index in range(1, t + 1):
            previous = current
            current = []
            for node in range(self.n):
                if self.include_back_ports:
                    received: tuple = tuple(
                        (previous[nbr], back)
                        for nbr, back in zip(
                            self.topology.neighbours(node), self._back[node]
                        )
                    )
                else:
                    received = tuple(
                        previous[nbr]
                        for nbr in self.topology.neighbours(node)
                    )
                current.append(
                    self.interner.intern(
                        (
                            "graph",
                            previous[node],
                            realization[node][round_index - 1],
                            received,
                        )
                    )
                )
        return tuple(current)


__all__ = ["GraphMessagePassingModel"]
