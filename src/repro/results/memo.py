"""Content-addressed cross-run memo for chain query answers.

Every exact sweep cell the chain stack answers is a pure function of
``(chain structure, task, horizon, quantity, backend)`` -- nothing about
the run, the engine, or the worker count can change it.  This module
memoizes those answers *across* runs: the key is a SHA-256 over

* the **chain structural digest** -- the same
  :func:`repro.chain.cache.key_digest` the disk cache files are named
  by, so two sweeps that build equal configurations share entries even
  though they never share Python objects;
* the **task content token** -- the ``(n, count-multisets)`` value
  identity of a :class:`~repro.core.tasks.CountTask` (tasks without a
  value identity are simply never memoized);
* the query's ``quantity`` / ``horizon`` and the arithmetic ``backend``
  (``solvable`` is always keyed exact -- it is decided exact under
  every backend).

Values are stored tagged so they round-trip **byte-identically**:
exact ``Fraction`` answers serialize as ``p/q`` strings, floats as
``float.hex()``; a memo hit returns exactly the object a fresh
evolution pass would have produced, so run directories written from
hits match cold ones byte for byte.

Persistence is an :class:`~repro.results.log.AppendLog` (``memo.log`` +
compacted ``memo.json``), safe under any number of concurrent sweep
workers.  The process-wide instance is installed with
:func:`configure_query_memo` -- the runner wires it through worker
payloads exactly like the chain disk cache -- and consulted by
:func:`repro.chain.run_queries` / :func:`repro.chain.run_group_queries`
before any evolution pass.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from fractions import Fraction

from ..obs import OBS
from .log import AppendLog

#: Sentinel distinguishing "no entry" from a stored ``None`` value.
MISS = object()

#: Compact the memo log once it grows past this many bytes (checked on
#: load; appends themselves never pay for compaction).
COMPACT_BYTES = 1 << 20


# ----------------------------------------------------------------------
# Tokens
# ----------------------------------------------------------------------
def task_token(task) -> "str | None":
    """A value-identity token for ``task``, or ``None`` if it has none.

    Mirrors the chain engine's content keying: a
    :class:`~repro.core.tasks.CountTask` is fully determined by its
    ``(n, count multisets)``; any other task class is unmemoizable.
    """
    multisets = getattr(task, "count_multisets", None)
    if not callable(multisets):
        return None
    return f"count:{task.n}:{multisets()!r}"


def query_token(
    chain_digest: str,
    quantity: str,
    task,
    horizon: "int | None",
    backend: str,
) -> "str | None":
    """The memo key of one query, or ``None`` when unmemoizable."""
    token = task_token(task)
    if token is None:
        return None
    if quantity == "solvable":
        backend = "exact"  # decided exact under every backend
    return hashlib.sha256(
        f"{chain_digest}|{token}|{quantity}|{horizon}|{backend}".encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# Value serialization (typed, byte-identical round trips)
# ----------------------------------------------------------------------
def encode_value(value) -> dict:
    """Tagged JSON-safe form of a query answer."""
    if value is None:
        return {"t": "none"}
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, Fraction):
        return {"t": "frac", "v": str(value)}
    if isinstance(value, float):
        # hex round-trips every finite float64 bit-exactly.
        return {"t": "float", "v": value.hex()}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, (list, tuple)):
        return {"t": "list", "v": [encode_value(item) for item in value]}
    raise TypeError(f"unmemoizable value type {type(value).__name__}")


def decode_value(payload: dict):
    """Inverse of :func:`encode_value`."""
    tag = payload["t"]
    if tag == "none":
        return None
    if tag == "bool":
        return bool(payload["v"])
    if tag == "frac":
        return Fraction(payload["v"])
    if tag == "float":
        return float.fromhex(payload["v"])
    if tag == "int":
        return int(payload["v"])
    if tag == "list":
        return [decode_value(item) for item in payload["v"]]
    raise ValueError(f"unknown value tag {tag!r}")


# ----------------------------------------------------------------------
# The memo store
# ----------------------------------------------------------------------
def _fold_entries(state, events):
    """AppendLog fold: last-writer-wins map of token -> encoded value.

    Entries are answers to pure functions, so every writer records the
    same value for a token and fold order is immaterial.
    """
    entries = dict(state) if isinstance(state, dict) else {}
    for event in events:
        token = event.get("k")
        if isinstance(token, str) and "v" in event:
            entries[token] = event["v"]
    return entries


class QueryMemo:
    """A directory-backed memo of query answers (see module docstring)."""

    def __init__(self, root: "str | os.PathLike[str]"):
        self.root = pathlib.Path(root)
        self._log = AppendLog(self.root, "memo")
        self._entries: dict[str, dict] = {}
        self._loaded_tail = -1
        self._hits = 0
        self._misses = 0
        self._load()

    def _load(self) -> None:
        if self._log.tail_bytes() > COMPACT_BYTES:
            self._entries = self._log.compact(_fold_entries) or {}
        else:
            self._entries = self._log.load(_fold_entries) or {}
        self._loaded_tail = self._log.tail_bytes()

    def refresh(self) -> None:
        """Pick up entries other processes appended since the last load.

        Cheap when nothing changed (one ``stat``); a grown or rotated
        log triggers a full reload.
        """
        if self._log.tail_bytes() != self._loaded_tail:
            self._load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, token: "str | None"):
        """The decoded answer for ``token``, or :data:`MISS`."""
        if token is None:
            return MISS
        raw = self._entries.get(token)
        if raw is None:
            self._misses += 1
            if OBS.enabled:
                OBS.metrics.inc("results.memo.miss")
            return MISS
        self._hits += 1
        if OBS.enabled:
            OBS.metrics.inc("results.memo.hit")
        try:
            return decode_value(raw)
        except (KeyError, ValueError, TypeError):
            return MISS

    def record(self, token: "str | None", value) -> None:
        """Durably append one answer (and serve it locally at once)."""
        if token is None or token in self._entries:
            return
        try:
            encoded = encode_value(value)
        except TypeError:
            return
        self._entries[token] = encoded
        if OBS.enabled:
            OBS.metrics.inc("results.memo.records")
            OBS.metrics.inc("results.memo.bytes", len(json.dumps(encoded)))
        if self._log.append({"k": token, "v": encoded}):
            # Keep the refresh fast path honest: our own append must
            # not read as "someone else grew the log" next job.
            self._loaded_tail = self._log.tail_bytes()

    def compact(self) -> int:
        """Fold the log into the snapshot; returns the entry count."""
        self._entries = self._log.compact(_fold_entries) or {}
        self._loaded_tail = self._log.tail_bytes()
        return len(self._entries)

    def stats(self) -> dict:
        """Entry count, in-process hit/miss counters, and log tail size."""
        return {
            "entries": len(self._entries),
            "hits": self._hits,
            "misses": self._misses,
            "log_bytes": self._log.tail_bytes(),
        }


# ----------------------------------------------------------------------
# The process-wide memo (wired through sweep worker payloads)
# ----------------------------------------------------------------------
_MEMO: "QueryMemo | None" = None


def configure_query_memo(
    root: "str | os.PathLike[str] | None",
) -> "QueryMemo | None":
    """Install (or, with ``None``, remove) the process-wide query memo.

    Re-configuring the same directory keeps the loaded instance and
    merely refreshes it from the shared log, so per-job payload
    application in pool workers costs one ``stat`` -- not a reload.
    """
    global _MEMO
    if root is None:
        _MEMO = None
        return None
    root = pathlib.Path(root)
    if _MEMO is not None and _MEMO.root == root:
        _MEMO.refresh()
        return _MEMO
    _MEMO = QueryMemo(root)
    return _MEMO


def query_memo() -> "QueryMemo | None":
    """The currently configured memo, if any."""
    return _MEMO


__all__ = [
    "MISS",
    "QueryMemo",
    "configure_query_memo",
    "decode_value",
    "encode_value",
    "query_memo",
    "query_token",
    "task_token",
]
