"""Columnar results warehouse and cross-run query memo.

The compute tier (``repro.chain``, ``repro.runner``) makes a *single*
sweep fast; this package is the storage/serving tier that makes the
*next* sweep fast too:

* :mod:`repro.results.store` -- an append-only columnar store: typed
  numpy column pages packed into immutable segments with JSON manifests,
  ingested incrementally from run directories via byte-offset
  watermarks, with crash-safe, idempotent compaction;
* :mod:`repro.results.query` -- a vectorized filter/project/group-
  aggregate expression API over the store's column pages, so reports and
  phase diagrams read aggregates without re-parsing JSONL;
* :mod:`repro.results.memo` -- a content-addressed cross-run memo keyed
  on (chain structural digest, task, horizon, quantity, backend),
  consulted by :func:`repro.chain.run_queries` /
  :func:`repro.chain.run_group_queries` before any evolution pass, so
  repeated or overlapping sweeps skip already-answered cells entirely
  (exact hits are byte-identical to recomputation);
* :mod:`repro.results.log` -- the append-only event-log primitive both
  the memo and the chain-cache load statistics build on.

See ``STORE.md`` for the on-disk schema and the memo key derivation.
"""

from .log import AppendLog
from .memo import (
    QueryMemo,
    configure_query_memo,
    decode_value,
    encode_value,
    query_memo,
    query_token,
    task_token,
)
from .query import Table, col
from .store import (
    RECORD_COLUMNS,
    ResultsStore,
    SegmentInfo,
    flatten_record,
    source_id,
    unflatten_row,
)

__all__ = [
    "AppendLog",
    "QueryMemo",
    "RECORD_COLUMNS",
    "ResultsStore",
    "SegmentInfo",
    "Table",
    "col",
    "configure_query_memo",
    "decode_value",
    "encode_value",
    "flatten_record",
    "query_memo",
    "query_token",
    "source_id",
    "task_token",
    "unflatten_row",
]
