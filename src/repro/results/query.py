"""Vectorized filter / project / group-aggregate over column pages.

The warehouse stores tables as numpy column arrays; this module is the
expression API consumers use instead of re-parsing JSONL row by row:

::

    table = store.table("records")
    solved = table.filter((col("model") == "clique") & col("solvable"))
    per_task = solved.group_by(
        ["task"], {"cells": ("count",), "mean_time": ("mean", "elapsed")}
    )

Predicates evaluate to boolean masks in single vectorized passes;
grouping factorizes the key columns with ``np.unique`` and folds every
aggregate with ``bincount``/``ufunc.at`` -- no per-row Python loops
anywhere on the hot path.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

#: Aggregate functions ``group_by`` understands.  ``count`` takes no
#: column; the rest fold one numeric column per group.
AGGREGATES = ("count", "sum", "mean", "min", "max", "any", "all")


class Expr:
    """A composable predicate over a table's columns."""

    def mask(self, table: "Table") -> np.ndarray:
        """Boolean row mask (vectorized); implemented by subclasses."""
        raise NotImplementedError

    def __and__(self, other: "Expr") -> "Expr":
        return _Combine(np.logical_and, self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return _Combine(np.logical_or, self, other)

    def __invert__(self) -> "Expr":
        return _Not(self)


class _Combine(Expr):
    """Two predicates joined by a vectorized logical ufunc."""

    def __init__(self, op, left: Expr, right: Expr):
        self.op, self.left, self.right = op, left, right

    def mask(self, table: "Table") -> np.ndarray:
        return self.op(self.left.mask(table), self.right.mask(table))


class _Not(Expr):
    """A negated predicate."""

    def __init__(self, inner: Expr):
        self.inner = inner

    def mask(self, table: "Table") -> np.ndarray:
        return ~self.inner.mask(table)


class _Compare(Expr):
    """One column compared against a literal (or membership set)."""

    def __init__(self, name: str, op: Callable, value):
        self.name, self.op, self.value = name, op, value

    def mask(self, table: "Table") -> np.ndarray:
        column = table.column(self.name)
        if self.op is np.isin:
            return np.isin(column, np.asarray(list(self.value)))
        value = self.value
        if column.dtype.kind in "US":
            value = str(value)
        return self.op(column, value)


class col(Expr):
    """A named column in predicate position.

    Bare ``col(name)`` is truthiness (non-zero / non-empty / ``True``),
    so boolean columns read naturally: ``table.filter(col("solvable"))``.
    """

    def __init__(self, name: str):
        self.name = name

    def mask(self, table: "Table") -> np.ndarray:
        column = table.column(self.name)
        if column.dtype.kind in "US":
            return column != ""
        return column.astype(bool)

    def __eq__(self, value) -> Expr:  # type: ignore[override]
        return _Compare(self.name, np.equal, value)

    def __ne__(self, value) -> Expr:  # type: ignore[override]
        return _Compare(self.name, np.not_equal, value)

    def __lt__(self, value) -> Expr:
        return _Compare(self.name, np.less, value)

    def __le__(self, value) -> Expr:
        return _Compare(self.name, np.less_equal, value)

    def __gt__(self, value) -> Expr:
        return _Compare(self.name, np.greater, value)

    def __ge__(self, value) -> Expr:
        return _Compare(self.name, np.greater_equal, value)

    def isin(self, values: Iterable) -> Expr:
        """Membership against a literal set (vectorized ``np.isin``)."""
        return _Compare(self.name, np.isin, tuple(values))

    __hash__ = None  # predicates are not hashable (— == builds an Expr)


class Table:
    """An immutable set of equal-length named column arrays."""

    def __init__(self, columns: Mapping[str, np.ndarray]):
        self.columns = {
            name: np.asarray(values) for name, values in columns.items()
        }
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: {sorted(lengths)}")
        self._rows = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self._rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table(rows={self._rows}, columns={sorted(self.columns)})"

    def column(self, name: str) -> np.ndarray:
        """One column as a numpy array."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; have {sorted(self.columns)}"
            )

    # ------------------------------------------------------------------
    # Relational verbs
    # ------------------------------------------------------------------
    def filter(self, predicate: "Expr | np.ndarray") -> "Table":
        """Rows where the predicate (or a boolean mask) holds."""
        mask = (
            predicate.mask(self)
            if isinstance(predicate, Expr)
            else np.asarray(predicate, dtype=bool)
        )
        return Table(
            {name: values[mask] for name, values in self.columns.items()}
        )

    def project(self, names: Sequence[str]) -> "Table":
        """Only the named columns, in the given order."""
        return Table({name: self.column(name) for name in names})

    def sort_by(self, names: Sequence[str]) -> "Table":
        """Rows ordered by the named columns (first name most significant)."""
        keys = [self.column(name) for name in reversed(list(names))]
        order = np.lexsort(keys) if keys else np.arange(self._rows)
        return Table(
            {name: values[order] for name, values in self.columns.items()}
        )

    def head(self, limit: int) -> "Table":
        """The first ``limit`` rows."""
        return Table(
            {name: values[:limit] for name, values in self.columns.items()}
        )

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Mapping[str, tuple],
    ) -> "Table":
        """One row per distinct key combination, plus folded aggregates.

        ``aggregates`` maps output column names to ``("count",)`` or
        ``(fn, column)`` with ``fn`` in :data:`AGGREGATES`.  Groups come
        back sorted by key.  Everything is a single factorization pass
        (``np.unique``) plus one ``bincount``/``ufunc.at`` per aggregate.
        """
        keys = list(keys)
        if not keys:
            raise ValueError("group_by needs at least one key column")
        group_ids = np.zeros(self._rows, dtype=np.int64)
        uniques_per_key: list[np.ndarray] = []
        for name in keys:
            values, inverse = np.unique(
                self.column(name), return_inverse=True
            )
            uniques_per_key.append(values)
            group_ids = group_ids * max(1, len(values)) + inverse
        distinct, first_at, inverse = np.unique(
            group_ids, return_index=True, return_inverse=True
        )
        groups = len(distinct)
        out: dict[str, np.ndarray] = {
            name: self.column(name)[first_at] for name in keys
        }
        counts = np.bincount(inverse, minlength=groups)
        for name, spec in aggregates.items():
            fn = spec[0]
            if fn not in AGGREGATES:
                raise ValueError(
                    f"unknown aggregate {fn!r}; expected one of {AGGREGATES}"
                )
            if fn == "count":
                out[name] = counts.astype(np.int64)
                continue
            column = self.column(spec[1]).astype(np.float64)
            if fn == "sum":
                out[name] = np.bincount(
                    inverse, weights=column, minlength=groups
                )
            elif fn == "mean":
                sums = np.bincount(
                    inverse, weights=column, minlength=groups
                )
                out[name] = sums / np.maximum(counts, 1)
            elif fn in ("min", "max"):
                folded = np.full(
                    groups, np.inf if fn == "min" else -np.inf
                )
                (np.minimum if fn == "min" else np.maximum).at(
                    folded, inverse, column
                )
                out[name] = folded
            elif fn == "any":
                out[name] = (
                    np.bincount(
                        inverse, weights=column != 0, minlength=groups
                    )
                    > 0
                )
            else:  # all
                out[name] = np.bincount(
                    inverse, weights=column != 0, minlength=groups
                ) == counts
        return Table(out)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict]:
        """Rows as plain-Python dicts (numpy scalars unboxed)."""
        names = list(self.columns)
        return [
            {
                name: self.columns[name][i].item()
                for name in names
            }
            for i in range(self._rows)
        ]

    def to_table(self) -> tuple[tuple[str, ...], list[tuple]]:
        """``(headers, rows)`` for the text-table renderer."""
        names = tuple(self.columns)
        return names, [
            tuple(self.columns[name][i].item() for name in names)
            for i in range(self._rows)
        ]


__all__ = ["AGGREGATES", "Expr", "Table", "col"]
