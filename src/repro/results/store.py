"""Append-only columnar results warehouse.

A warehouse is a directory of immutable **segments**.  Each segment is
one ``.npz`` of typed numpy column pages (int64 / float64 / bool pages
stored directly; string pages dictionary-encoded as an ``int32`` code
page plus a unicode value page) committed by an atomically-replaced JSON
manifest -- a segment without its manifest does not exist, so a crash
mid-write leaves at worst an ignored temp file.

Ingestion is **watermarked**: run directories stream one JSON record per
completed job into ``records.jsonl`` (:mod:`repro.runner.persistence`),
and :meth:`ResultsStore.ingest_run_directory` reads only the bytes past
the highest offset any existing segment covers, so re-ingesting after a
kill -- even one that struck between the segment write and nothing else
(there is nothing else; the segment name *is* the watermark) -- is
idempotent.  Torn trailing lines stay un-ingested until their record is
re-run and re-appended, exactly mirroring the run directory's own
resume semantics.

Compaction merges a table's segments into one and deletes the parts.
The merged manifest lists the member segments it ``replaces``; readers
skip any live segment another live manifest replaces, so a crash between
the merge write and the member deletion never double-counts a row, and
re-running compaction converges to the same single segment.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..obs import OBS
from .query import Table

#: Column kinds a schema may declare.
KINDS = ("int", "float", "bool", "str")

_DTYPES = {"int": np.int64, "float": np.float64, "bool": np.bool_}

#: Fixed schema of the ``records`` table (flattened sweep job records).
RECORD_COLUMNS: dict[str, str] = {
    "key": "str",
    "index": "int",
    "sizes": "str",
    "model": "str",
    "ports": "str",
    "task": "str",
    "kind": "str",
    "t": "int",
    "samples": "int",
    "replicate": "int",
    "seed": "int",
    "gcd": "int",
    "limit": "str",
    "limit_float": "float",
    "solvable": "bool",
    "estimate": "float",
    "successes": "int",
    "elapsed": "float",
    #: Non-conforming records round-trip through this raw-JSON column.
    "extra": "str",
}

#: Fixed schema of the ``groups`` table (per-group sweep diagnostics).
GROUP_COLUMNS: dict[str, str] = {
    "master_seed": "int",
    "jobs": "int",
    "chains": "int",
    "states": "int",
    "transitions": "int",
    "density": "float",
    "evolution": "str",
    "memo_hits": "int",
    "elapsed": "float",
}

#: Fixed schema of the ``experiments`` table (report outcomes).
EXPERIMENT_COLUMNS: dict[str, str] = {
    "experiment_id": "str",
    "title": "str",
    "passed": "bool",
    "rows": "int",
    "stamp": "float",
}

#: Fixed schema of the ``telemetry`` table (persisted sweep telemetry:
#: counters, gauges, histogram totals, and span aggregates -- see
#: ``repro.obs.telemetry_rows``).  ``stamp`` is wall-clock append time
#: via :func:`repro.obs.clock.now`; ``value``/``count`` carry the
#: kind-specific magnitude (counter total, gauge level, histogram sum,
#: span seconds) and occurrence count.
TELEMETRY_COLUMNS: dict[str, str] = {
    "stamp": "float",
    "master_seed": "int",
    "kind": "str",
    "name": "str",
    "value": "float",
    "count": "int",
}

#: Fixed schema of the ``models`` table (fitted cost models -- see
#: ``repro.obs.calibrate``).  ``digest`` is the model's content address
#: (sha256 of its canonical JSON), making calibration idempotent:
#: re-fitting identical data appends nothing.  ``features`` and ``coef``
#: are JSON-encoded lists; ``version`` is the fitting-recipe version
#: (``repro.obs.policy.MODEL_VERSION``) -- a policy ignores rows from
#: another recipe.  Latest row per ``target`` wins.
MODEL_COLUMNS: dict[str, str] = {
    "stamp": "float",
    "digest": "str",
    "version": "int",
    "target": "str",
    "features": "str",
    "coef": "str",
    "rows": "int",
    "residual": "float",
}

_DEFAULTS = {"int": 0, "float": float("nan"), "bool": False, "str": ""}

_SPEC_FIELDS = (
    "sizes", "model", "ports", "task", "kind", "t", "samples", "replicate",
)


def source_id(path: "str | os.PathLike[str]") -> str:
    """Stable identity of an ingestion source (its resolved path)."""
    resolved = str(pathlib.Path(path).resolve())
    return hashlib.sha256(resolved.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Record flattening (JSONL job records <-> columnar rows)
# ----------------------------------------------------------------------
def flatten_record(record: object) -> dict:
    """One job record as a ``records``-schema row.

    A record that matches the worker's exact shape flattens losslessly
    into typed columns; anything else (hand-edited logs, foreign tools)
    keeps its full JSON in the ``extra`` column so
    :func:`unflatten_row` still round-trips it byte-for-byte.
    """
    row = {
        name: _DEFAULTS[kind] for name, kind in RECORD_COLUMNS.items()
    }
    try:
        spec = record["spec"]
        value = record["value"]
        if set(record) != {
            "key", "index", "spec", "seed", "gcd", "value", "elapsed"
        } or set(spec) != set(_SPEC_FIELDS):
            raise KeyError("non-canonical record shape")
        row.update(
            key=str(record["key"]),
            index=int(record["index"]),
            sizes=",".join(str(int(s)) for s in spec["sizes"]),
            model=str(spec["model"]),
            ports=str(spec["ports"]),
            task=str(spec["task"]),
            kind=str(spec["kind"]),
            t=int(spec["t"]),
            samples=int(spec["samples"]),
            replicate=int(spec["replicate"]),
            seed=int(record["seed"]),
            gcd=int(record["gcd"]),
            elapsed=float(record["elapsed"]),
        )
        if spec["kind"] == "exact":
            if set(value) != {"limit", "limit_float", "solvable"}:
                raise KeyError("non-canonical exact value")
            row.update(
                limit=str(value["limit"]),
                limit_float=float(value["limit_float"]),
                solvable=bool(value["solvable"]),
            )
        else:
            if set(value) != {"estimate", "successes", "samples"} or int(
                value["samples"]
            ) != int(spec["samples"]):
                raise KeyError("non-canonical sample value")
            row.update(
                estimate=float(value["estimate"]),
                successes=int(value["successes"]),
            )
    except (KeyError, TypeError, ValueError, IndexError):
        row = {name: _DEFAULTS[kind] for name, kind in RECORD_COLUMNS.items()}
        row["extra"] = json.dumps(record, sort_keys=True)
        if isinstance(record, dict) and isinstance(record.get("key"), str):
            row["key"] = record["key"]
    return row


def unflatten_row(row: dict) -> object:
    """Inverse of :func:`flatten_record` (dict-equal to the original)."""
    if row.get("extra"):
        return json.loads(row["extra"])
    spec = {
        "sizes": [int(s) for s in str(row["sizes"]).split(",")],
        "model": str(row["model"]),
        "ports": str(row["ports"]),
        "task": str(row["task"]),
        "kind": str(row["kind"]),
        "t": int(row["t"]),
        "samples": int(row["samples"]),
        "replicate": int(row["replicate"]),
    }
    if spec["kind"] == "exact":
        value = {
            "limit": str(row["limit"]),
            "limit_float": float(row["limit_float"]),
            "solvable": bool(row["solvable"]),
        }
    else:
        value = {
            "estimate": float(row["estimate"]),
            "successes": int(row["successes"]),
            "samples": int(row["samples"]),
        }
    return {
        "key": str(row["key"]),
        "index": int(row["index"]),
        "spec": spec,
        "seed": int(row["seed"]),
        "gcd": int(row["gcd"]),
        "value": value,
        "elapsed": float(row["elapsed"]),
    }


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentInfo:
    """One committed segment, as described by its manifest."""

    name: str
    table: str
    rows: int
    columns: dict[str, str]
    #: Ingestion provenance: source identity and the byte range of the
    #: source file this segment covers ("" / 0 / 0 for direct appends).
    source: str = ""
    start: int = 0
    end: int = 0
    #: Segments this one supersedes (set by compaction).
    replaces: tuple[str, ...] = field(default_factory=tuple)

    def to_manifest(self) -> dict:
        return {
            "name": self.name,
            "table": self.table,
            "rows": self.rows,
            "columns": dict(self.columns),
            "source": self.source,
            "start": self.start,
            "end": self.end,
            "replaces": list(self.replaces),
        }

    @classmethod
    def from_manifest(cls, payload: dict) -> "SegmentInfo":
        return cls(
            name=str(payload["name"]),
            table=str(payload["table"]),
            rows=int(payload["rows"]),
            columns={
                str(k): str(v) for k, v in payload["columns"].items()
            },
            source=str(payload.get("source", "")),
            start=int(payload.get("start", 0)),
            end=int(payload.get("end", 0)),
            replaces=tuple(payload.get("replaces", ())),
        )


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultsStore:
    """A warehouse directory: ``segments/*.npz`` + ``*.json`` manifests,
    plus the cross-run query memo under ``memo/``.

    All mutation is append-only (new segments) or supersede-then-delete
    (compaction); readers always see a consistent snapshot because a
    segment becomes visible only when its manifest lands via
    ``os.replace``.
    """

    def __init__(self, root: "str | os.PathLike[str]"):
        self.root = pathlib.Path(root)
        self.segment_dir.mkdir(parents=True, exist_ok=True)

    @property
    def segment_dir(self) -> pathlib.Path:
        return self.root / "segments"

    @property
    def memo_dir(self) -> pathlib.Path:
        """Where :class:`~repro.results.memo.QueryMemo` lives."""
        return self.root / "memo"

    # ------------------------------------------------------------------
    # Segment plumbing
    # ------------------------------------------------------------------
    def _manifests(self) -> list[SegmentInfo]:
        found = []
        for path in sorted(self.segment_dir.glob("*.json")):
            try:
                found.append(
                    SegmentInfo.from_manifest(json.loads(path.read_text()))
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return found

    def segments(self, table: "str | None" = None) -> list[SegmentInfo]:
        """Live segments (superseded ones filtered out), in read order.

        Read order is ``(source, start byte, name)`` so concatenating
        segment pages reproduces source-file row order exactly.
        """
        manifests = [
            info
            for info in self._manifests()
            if table is None or info.table == table
        ]
        replaced = {
            name for info in manifests for name in info.replaces
        }
        live = [info for info in manifests if info.name not in replaced]
        live.sort(key=lambda info: (info.table, info.source, info.start,
                                    info.name))
        return live

    def tables(self) -> list[str]:
        """Table names with at least one live segment."""
        return sorted({info.table for info in self.segments()})

    def total_rows(self, table: str) -> int:
        return sum(info.rows for info in self.segments(table))

    def watermark(self, source: str, table: str = "records") -> int:
        """Highest source byte offset any segment (live or not) covers."""
        return max(
            (
                info.end
                for info in self._manifests()
                if info.table == table and info.source == source
            ),
            default=0,
        )

    def _paths_for(self, name: str) -> tuple[pathlib.Path, pathlib.Path]:
        return (
            self.segment_dir / f"{name}.npz",
            self.segment_dir / f"{name}.json",
        )

    def write_segment(
        self,
        name: str,
        table: str,
        rows: list[dict],
        schema: dict[str, str],
        *,
        source: str = "",
        start: int = 0,
        end: int = 0,
        replaces: Iterable[str] = (),
    ) -> "SegmentInfo | None":
        """Commit one segment; ``None`` when ``name`` already exists.

        Column pages write to a temp ``.npz`` first; the manifest's
        ``os.replace`` is the commit point, so readers never observe a
        partial segment and re-running an interrupted ingest (same
        deterministic name) is a no-op or a clean overwrite.
        """
        npz_path, manifest_path = self._paths_for(name)
        if manifest_path.exists():
            return None
        arrays: dict[str, np.ndarray] = {}
        for column, kind in schema.items():
            if kind not in KINDS:
                raise ValueError(f"unknown column kind {kind!r}")
            values = [row.get(column, _DEFAULTS[kind]) for row in rows]
            if kind == "str":
                decoded = np.asarray(values, dtype=np.str_)
                uniques, codes = (
                    np.unique(decoded, return_inverse=True)
                    if len(decoded)
                    else (np.asarray([], dtype=np.str_),
                          np.asarray([], dtype=np.int32))
                )
                arrays[f"{column}__codes"] = codes.astype(np.int32)
                arrays[f"{column}__values"] = uniques
            else:
                arrays[column] = np.asarray(values, dtype=_DTYPES[kind])
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.segment_dir, prefix=f"{name}.npz", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp, npz_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        info = SegmentInfo(
            name=name,
            table=table,
            rows=len(rows),
            columns=dict(schema),
            source=source,
            start=start,
            end=end,
            replaces=tuple(replaces),
        )
        _atomic_write_text(
            manifest_path, json.dumps(info.to_manifest(), indent=2)
        )
        if OBS.enabled:
            OBS.metrics.inc("results.store.segments")
            OBS.metrics.inc("results.store.rows", len(rows))
        return info

    def read_segment(self, info: SegmentInfo) -> dict[str, np.ndarray]:
        """The segment's column pages, strings decoded to unicode arrays."""
        npz_path, _ = self._paths_for(info.name)
        columns: dict[str, np.ndarray] = {}
        with np.load(npz_path, allow_pickle=False) as pages:
            for column, kind in info.columns.items():
                if kind == "str":
                    values = pages[f"{column}__values"]
                    codes = pages[f"{column}__codes"]
                    columns[column] = (
                        values[codes]
                        if len(codes)
                        else np.asarray([], dtype=np.str_)
                    )
                else:
                    columns[column] = pages[column]
        return columns

    def delete_segment(self, name: str) -> None:
        for path in self._paths_for(name):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Writing rows
    # ------------------------------------------------------------------
    def append_rows(
        self,
        table: str,
        rows: list[dict],
        schema: dict[str, str],
        *,
        name: "str | None" = None,
    ) -> "SegmentInfo | None":
        """Append free-standing rows (no source watermark) as one segment."""
        if not rows:
            return None
        if name is None:
            name = f"{table}--{time.time_ns():020d}-{os.getpid()}"
        return self.write_segment(name, table, rows, schema)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_run_directory(self, run_dir) -> int:
        """Ingest a run directory's new job records; returns rows added.

        ``run_dir`` is a path or a
        :class:`~repro.runner.persistence.RunDirectory`.  Only bytes
        past the existing watermark are read, and only complete lines
        are ingested -- a torn trailing line (killed writer) waits for
        the job's re-run, byte-compatible with the run directory's own
        resume contract.
        """
        path = getattr(run_dir, "records_path", None)
        if path is None:
            path = pathlib.Path(run_dir) / "records.jsonl"
        return self.ingest_jsonl("records", path, flatten_record,
                                 RECORD_COLUMNS)

    def ingest_jsonl(
        self,
        table: str,
        path: "str | os.PathLike[str]",
        flatten: Callable[[object], dict],
        schema: dict[str, str],
    ) -> int:
        """Watermarked ingestion of one JSONL file into ``table``."""
        path = pathlib.Path(path)
        source = source_id(path)
        start = self.watermark(source, table)
        try:
            with path.open("rb") as handle:
                handle.seek(start)
                data = handle.read()
        except OSError:
            return 0
        cut = data.rfind(b"\n")
        if cut < 0:
            return 0
        chunk = data[: cut + 1]
        rows = []
        for line in chunk.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8", errors="replace"))
            except ValueError:
                # A torn or corrupt interior line; the run directory's
                # own reader skips it identically.
                continue
            rows.append(flatten(record))
        end = start + len(chunk)
        name = f"{table}-{source}-{start:012d}-{end:012d}"
        self.write_segment(
            name, table, rows, schema, source=source, start=start, end=end
        )
        if OBS.enabled:
            OBS.metrics.inc("results.store.rows_ingested", len(rows))
        return len(rows)

    def run_directory_records(self, run_dir) -> "list[dict] | None":
        """Job records rebuilt from column pages, or ``None``.

        Returns ``None`` unless the warehouse fully covers the run
        directory's ``records.jsonl`` (every complete line ingested), in
        which case the reconstruction is dict-equal to
        :meth:`~repro.runner.persistence.RunDirectory.load_records` --
        the resume path reads column pages instead of re-parsing JSONL.
        """
        path = getattr(run_dir, "records_path", None)
        if path is None:
            path = pathlib.Path(run_dir) / "records.jsonl"
        try:
            size = path.stat().st_size
        except OSError:
            return None
        covered = self.watermark(source_id(path))
        if covered > size:
            # The file shrank below the watermark: somebody edited the
            # append-only log out of band.  The JSONL is the source of
            # truth; never serve stale column pages over it.
            return None
        if covered < size:
            # Tolerate exactly one torn trailing line (no newline yet):
            # those bytes can never become ingested rows until rewritten.
            try:
                with path.open("rb") as handle:
                    handle.seek(covered)
                    tail = handle.read()
            except OSError:
                return None
            if b"\n" in tail:
                return None
        source = source_id(path)
        records: list[dict] = []
        for info in self.segments("records"):
            if info.source != source:
                continue
            pages = self.read_segment(info)
            for i in range(info.rows):
                row = {
                    name: pages[name][i].item()
                    if name in pages
                    else _DEFAULTS[kind]
                    for name, kind in info.columns.items()
                }
                records.append(unflatten_row(row))
        return records

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def vacuum_run_directory(self, run_dir) -> str:
        """Delete a run directory the warehouse has fully ingested.

        Retention companion to :meth:`ingest_run_directory`: once every
        byte of a run directory's ``records.jsonl`` is below the records
        watermark, the directory is derived state the warehouse can
        serve by itself (:meth:`run_directory_records`), and the disk
        can be reclaimed.

        Deliberately stricter than :meth:`run_directory_records`: a torn
        trailing line is *not* tolerated here, because deleting the
        directory would destroy the only copy of those bytes.  Returns
        one of:

        * ``"removed"`` -- directory fully covered, deleted;
        * ``"missing"`` -- no readable ``records.jsonl`` (nothing to
          certify, directory left alone);
        * ``"not-covered"`` -- bytes beyond the watermark (or below it:
          an out-of-band edit), directory left alone;
        * ``"contains-warehouse"`` -- refused: this store's root lives
          inside the directory.
        """
        path = getattr(run_dir, "path", None)
        directory = pathlib.Path(path if path is not None else run_dir)
        directory = directory.resolve()
        root = self.root.resolve()
        if root == directory or directory in root.parents:
            return "contains-warehouse"
        records = directory / "records.jsonl"
        try:
            size = records.stat().st_size
        except OSError:
            return "missing"
        if self.watermark(source_id(records)) != size:
            return "not-covered"
        shutil.rmtree(directory)
        if OBS.enabled:
            OBS.metrics.inc("results.store.vacuum")
        return "removed"

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def table(self, table: str) -> Table:
        """Every live segment of ``table`` concatenated into one
        :class:`~repro.results.query.Table` (column pages, not JSONL)."""
        segments = self.segments(table)
        columns: dict[str, str] = {}
        for info in segments:
            columns.update(info.columns)
        parts: dict[str, list[np.ndarray]] = {name: [] for name in columns}
        for info in segments:
            pages = self.read_segment(info)
            for name, kind in columns.items():
                if name in pages:
                    parts[name].append(pages[name])
                else:  # schema drift across segments: fill defaults
                    fill = _DEFAULTS[kind]
                    dtype = np.str_ if kind == "str" else _DTYPES[kind]
                    parts[name].append(
                        np.full(info.rows, fill, dtype=dtype)
                    )
        data = {
            name: (
                np.concatenate(chunks)
                if chunks
                else np.asarray(
                    [],
                    dtype=np.str_ if columns[name] == "str"
                    else _DTYPES[columns[name]],
                )
            )
            for name, chunks in parts.items()
        }
        return Table(data)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, table: "str | None" = None) -> dict:
        """Merge each table's live segments into one; returns a summary.

        Crash-safe: the merged segment's manifest lists what it
        ``replaces`` before any member is deleted, so readers skip the
        members from the instant the merge commits, and a crash between
        commit and deletion only leaves garbage a re-run removes.
        Idempotent: a compacted table compacts to itself.
        """
        merged = 0
        removed = 0
        # Clean up members a crashed earlier compaction left behind.
        manifests = self._manifests()
        replaced = {
            name
            for info in manifests
            for name in info.replaces
        }
        for info in manifests:
            if info.name in replaced and (
                table is None or info.table == table
            ):
                self.delete_segment(info.name)
                removed += 1
        for current in self.tables():
            if table is not None and current != table:
                continue
            by_source: dict[str, list[SegmentInfo]] = {}
            for info in self.segments(current):
                by_source.setdefault(info.source, []).append(info)
            for source, members in by_source.items():
                if len(members) < 2:
                    continue
                schema: dict[str, str] = {}
                for info in members:
                    schema.update(info.columns)
                tables = [self.read_segment(info) for info in members]
                rows: list[dict] = []
                for info, pages in zip(members, tables):
                    for i in range(info.rows):
                        rows.append(
                            {
                                name: (
                                    pages[name][i].item()
                                    if name in pages
                                    else _DEFAULTS[schema[name]]
                                )
                                for name in schema
                            }
                        )
                if source:
                    start = min(info.start for info in members)
                    end = max(info.end for info in members)
                    name = f"{current}-{source}-{start:012d}-{end:012d}"
                else:
                    start = end = 0
                    tag = hashlib.sha256(
                        "|".join(info.name for info in members).encode()
                    ).hexdigest()[:12]
                    name = f"{current}--merged-{tag}"
                info = self.write_segment(
                    name,
                    current,
                    rows,
                    schema,
                    source=source,
                    start=start,
                    end=end,
                    replaces=[m.name for m in members if m.name != name],
                )
                merged += 1
                for member in members:
                    if member.name != name:
                        self.delete_segment(member.name)
                        removed += 1
        if OBS.enabled and merged:
            OBS.metrics.inc("results.store.compactions", merged)
        return {"merged": merged, "removed": removed}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Row/segment/byte counts per table plus memo accounting."""
        tables = {}
        for name in self.tables():
            segments = self.segments(name)
            size = 0
            for info in segments:
                for path in self._paths_for(info.name):
                    try:
                        size += path.stat().st_size
                    except OSError:
                        pass
            tables[name] = {
                "rows": sum(info.rows for info in segments),
                "segments": len(segments),
                "bytes": size,
            }
        from .memo import QueryMemo

        memo = QueryMemo(self.memo_dir)
        return {"root": str(self.root), "tables": tables,
                "memo": memo.stats()}


def _nan_safe(value: float) -> object:
    """JSON-safe scalar (NaN degrades to None for export paths)."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


__all__ = [
    "EXPERIMENT_COLUMNS",
    "GROUP_COLUMNS",
    "KINDS",
    "MODEL_COLUMNS",
    "RECORD_COLUMNS",
    "TELEMETRY_COLUMNS",
    "ResultsStore",
    "SegmentInfo",
    "flatten_record",
    "source_id",
    "unflatten_row",
]
