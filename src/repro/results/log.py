"""Append-only JSON event logs with fold-on-compact snapshots.

The warehouse needs two kinds of "many concurrent writers, occasional
reader" state: the cross-run query memo (:mod:`repro.results.memo`) and
the chain-cache load statistics (:mod:`repro.chain.cache`).  Both used
to be impossible to keep exact with a read-modify-write sidecar file --
two workers racing on the rewrite silently dropped one worker's update.

:class:`AppendLog` solves both with the same primitive:

* **append** -- one event is one JSON line written with a *single*
  ``os.write`` to an ``O_APPEND`` descriptor.  POSIX guarantees the
  offset update and the write are atomic, so concurrent writers
  interleave whole lines and no event is ever lost or torn (events here
  are far below the pipe-buffer atomicity bound).
* **replay** -- readers fold the snapshot state plus every event not yet
  folded into it; the answer is exact whatever writers are doing.
* **compact** -- the live log rotates to an immutable segment file, all
  unfolded segments fold into a new snapshot (written atomically via
  temp file + ``os.replace``), and segments already recorded as folded
  are deleted.  Folding and deletion happen in *separate* compactions,
  so a writer that raced the rotation gets a full compaction cycle of
  grace; a crash between fold and snapshot write simply refolds the same
  events next time (the snapshot is the sole commit point, so nothing is
  double-counted).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time


class AppendLog:
    """An append-only event log named ``<name>.log`` in a directory.

    Compaction maintains ``<name>.json`` -- ``{"state": <folded>,
    "folded": [segment names]}`` -- plus zero or more immutable
    ``<name>-*.seg`` rotation segments awaiting deletion.  A legacy
    snapshot that is *not* shaped like ``{"state": ..., "folded": ...}``
    is treated as the initial folded state with nothing folded, which
    migrates old sidecar formats in place on the next compaction.
    """

    def __init__(self, directory: "str | os.PathLike[str]", name: str):
        self.directory = pathlib.Path(directory)
        self.name = name

    @property
    def log_path(self) -> pathlib.Path:
        """The live append target."""
        return self.directory / f"{self.name}.log"

    @property
    def snapshot_path(self) -> pathlib.Path:
        """The folded-state snapshot."""
        return self.directory / f"{self.name}.json"

    def segment_paths(self) -> list[pathlib.Path]:
        """Rotated segments on disk, in rotation order."""
        return sorted(self.directory.glob(f"{self.name}-*.seg"))

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, event: dict) -> bool:
        """Durably append one event; ``False`` if the write failed.

        The whole line goes down in one ``os.write`` on an ``O_APPEND``
        descriptor opened per call, so concurrent appenders -- including
        ones racing a compaction's rotation -- never lose or tear an
        event.  Best-effort like every sidecar here: a full disk or a
        vanished directory degrades to ``False``, never an exception.
        """
        line = json.dumps(event, sort_keys=True) + "\n"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.log_path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        except OSError:
            return False
        try:
            os.write(fd, line.encode("utf-8"))
        except OSError:
            return False
        finally:
            os.close(fd)
        return True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read_snapshot(self) -> tuple[object, list[str]]:
        """``(state, folded segment names)``; ``(None, [])`` when absent."""
        try:
            raw = json.loads(self.snapshot_path.read_text())
        except (OSError, ValueError):
            return None, []
        if (
            isinstance(raw, dict)
            and set(raw.keys()) == {"state", "folded"}
            and isinstance(raw["folded"], list)
        ):
            return raw["state"], [str(name) for name in raw["folded"]]
        # Legacy sidecar format: the whole document is the state.
        return raw, []

    @staticmethod
    def _read_events(path: pathlib.Path) -> list[dict]:
        """Events in one log/segment file; torn or junk lines skipped."""
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return []
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                events.append(event)
        return events

    def pending_events(self) -> list[dict]:
        """Every event not yet folded into the snapshot."""
        _, folded = self._read_snapshot()
        events: list[dict] = []
        for path in self.segment_paths():
            if path.name not in folded:
                events.extend(self._read_events(path))
        events.extend(self._read_events(self.log_path))
        return events

    def load(self, fold) -> object:
        """The exact current state: snapshot plus unfolded events.

        ``fold(state, events)`` folds a batch of events into a state
        (``state`` may be ``None`` for "empty", ``events`` empty); it
        must treat event order across files as insignificant, which
        every user here does (counters and last-writer-wins maps of
        deterministic values).
        """
        state, _ = self._read_snapshot()
        return fold(state, self.pending_events())

    def tail_bytes(self) -> int:
        """Size of the live log (compaction-pressure heuristic)."""
        try:
            return self.log_path.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, fold) -> object:
        """Fold pending events into a fresh snapshot; returns the state.

        Crash-safe and idempotent: segments fold exactly once (the
        snapshot's ``folded`` list is the ledger), the snapshot replace
        is atomic, and a compaction that dies anywhere re-runs cleanly.
        """
        state, folded = self._read_snapshot()
        # Phase 1: segments folded by a *previous* compaction have had
        # their grace cycle; delete them now.  One whose unlink fails
        # stays in the folded ledger so it is never counted twice.
        still_folded = []
        for path in self.segment_paths():
            if path.name in folded:
                try:
                    path.unlink()
                except OSError:
                    still_folded.append(path.name)
        # Phase 2: rotate the live log out from under new appends.
        if self.tail_bytes():
            rotated = self.directory / (
                f"{self.name}-{time.time_ns():020d}-{os.getpid()}.seg"
            )
            try:
                os.rename(self.log_path, rotated)
            except OSError:
                pass  # a concurrent compaction rotated first
        # Phase 3: fold everything not yet in the snapshot.
        newly_folded = []
        events: list[dict] = []
        for path in self.segment_paths():
            if path.name in folded:
                continue
            events.extend(self._read_events(path))
            newly_folded.append(path.name)
        state = fold(state, events)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f"{self.name}.json", suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    {"state": state, "folded": still_folded + newly_folded},
                    handle,
                    sort_keys=True,
                )
            os.replace(tmp, self.snapshot_path)
        except OSError:
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass
        return state

    def clear(self) -> None:
        """Remove the log, snapshot, and every segment (best-effort)."""
        for path in (
            [self.log_path, self.snapshot_path] + self.segment_paths()
        ):
            try:
                path.unlink()
            except OSError:
                pass


__all__ = ["AppendLog"]
