"""Mergeable, memoized Monte-Carlo estimates over substream blocks.

An MC cell is identified by ``(structural chain digest, task token,
horizon, method, stream seed)``; its trials are the fixed
:data:`~repro.sampling.kernel.BLOCK_SAMPLES`-sized blocks of the kernel's
counter-based substream.  Because every block is a pure function of its
``(stream seed, block index)`` key, integer success counts obey an
associative merge law::

    successes[0, 10000) + successes[10000, 20000) == successes[0, 20000)

bit-exactly -- so estimates memoized at one budget extend to any larger
budget, and any partition of a sample range across workers reassembles
the same totals.  Full blocks land in the cross-run
:class:`~repro.results.memo.QueryMemo` as plain integers under
``mc``-prefixed tokens; partial blocks at range edges are computed fresh
(one vectorized kernel pass) and never stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256

from ..obs import OBS
from ..results.memo import MISS, query_memo, task_token
from .kernel import BLOCK_SAMPLES, block_indicators, resolve_method
from .stats import wilson_interval


@dataclass(frozen=True)
class MCEstimate:
    """An integer ``(successes, samples)`` pair -- the mergeable unit."""

    successes: int
    samples: int

    def __post_init__(self):
        if self.samples < 0 or not 0 <= self.successes <= self.samples:
            raise ValueError(
                f"invalid estimate {self.successes}/{self.samples}"
            )

    @property
    def probability(self) -> float:
        if self.samples == 0:
            raise ValueError("empty estimate has no probability")
        return self.successes / self.samples

    def interval(self, confidence: float = 0.95) -> tuple[float, float]:
        return wilson_interval(self.successes, self.samples, confidence)

    def merge(self, other: "MCEstimate") -> "MCEstimate":
        """Combine disjoint sample ranges of the same cell."""
        return MCEstimate(
            self.successes + other.successes, self.samples + other.samples
        )


def cell_digest(
    alpha, ports=None, *, method: str = "auto", quotient=None
) -> str:
    """The structural digest an MC cell keys its memo entries under.

    Bit-level methods sample the configuration itself, so they share the
    plain structural key; the chain-trajectory method samples a
    *compiled* chain, whose quotient/full choice changes the trajectory
    distribution's state space (not its marginals) -- it keys under the
    effective (possibly quotient-tagged) chain key.
    """
    from ..chain.cache import key_digest
    from ..chain.engine import chain_key
    from ..chain.quotient import effective_chain_key

    if resolve_method(method, ports) == "chain":
        return key_digest(effective_chain_key(alpha, ports, quotient=quotient))
    return key_digest(chain_key(alpha, ports))


def block_token(
    digest: str,
    task,
    t: int,
    method: str,
    stream_seed: int,
    block: int,
) -> "str | None":
    """The memo token of one *full* block, or ``None`` if unmemoizable.

    ``BLOCK_SAMPLES`` is baked into the token so the layout could only
    ever change by orphaning -- never corrupting -- old entries.
    """
    token = task_token(task)
    if token is None:
        return None
    return sha256(
        f"mc|{digest}|{token}|t={t}|m={method}|s={stream_seed}"
        f"|b={block}|bs={BLOCK_SAMPLES}".encode()
    ).hexdigest()


def sample_range(
    alpha,
    task,
    t: int,
    ports=None,
    *,
    stream_seed: int,
    start: int,
    stop: int,
    method: str = "auto",
    quotient=None,
    use_memo: bool = True,
) -> MCEstimate:
    """Successes over samples ``[start, stop)`` of a cell's substream.

    Full blocks inside the range are served from (and recorded to) the
    configured cross-run memo; edge blocks are computed fresh.  The
    result is a pure function of the cell and the range -- independent
    of memo state, worker count, and how callers partition the range.
    """
    if not 0 <= start < stop:
        raise ValueError(f"need 0 <= start < stop, got [{start}, {stop})")
    resolved = resolve_method(method, ports)
    memo = query_memo() if use_memo else None
    digest = (
        cell_digest(alpha, ports, method=resolved, quotient=quotient)
        if memo is not None
        else None
    )
    successes = 0
    hits = 0
    fresh = 0
    for block in range(start // BLOCK_SAMPLES, (stop - 1) // BLOCK_SAMPLES + 1):
        lo = max(start, block * BLOCK_SAMPLES)
        hi = min(stop, (block + 1) * BLOCK_SAMPLES)
        full = hi - lo == BLOCK_SAMPLES
        token = (
            block_token(digest, task, t, resolved, stream_seed, block)
            if full and memo is not None
            else None
        )
        if token is not None:
            value = memo.lookup(token)
            if value is not MISS and isinstance(value, int):
                successes += value
                hits += 1
                if OBS.enabled:
                    OBS.metrics.inc("mc.memo.hit")
                continue
        indicators = block_indicators(
            alpha,
            task,
            t,
            ports,
            stream_seed=stream_seed,
            block=block,
            method=resolved,
            quotient=quotient,
        )
        successes += int(
            indicators[lo - block * BLOCK_SAMPLES : hi - block * BLOCK_SAMPLES]
            .sum()
        )
        fresh += 1
        if OBS.enabled:
            OBS.metrics.inc("mc.blocks")
            OBS.metrics.inc("mc.samples", hi - lo)
        if token is not None:
            memo.record(token, int(indicators.sum()))
    if hits and fresh and OBS.enabled:
        # A warm cell extended by fresh increments: the merge the memo
        # exists for.
        OBS.metrics.inc("mc.memo.merge")
    return MCEstimate(successes, stop - start)


def sample_cell(
    alpha,
    task,
    t: int,
    ports=None,
    *,
    stream_seed: int,
    samples: int,
    method: str = "auto",
    quotient=None,
    use_memo: bool = True,
) -> MCEstimate:
    """The first ``samples`` trials of a cell's substream."""
    if samples < 1:
        raise ValueError("need samples >= 1")
    return sample_range(
        alpha,
        task,
        t,
        ports,
        stream_seed=stream_seed,
        start=0,
        stop=samples,
        method=method,
        quotient=quotient,
        use_memo=use_memo,
    )


__all__ = [
    "MCEstimate",
    "block_token",
    "cell_digest",
    "sample_cell",
    "sample_range",
]
