"""Binomial interval statistics for the Monte-Carlo tier.

Canonical home of the Wilson score interval (and the inverse-normal
quantile it needs).  Historically these lived in
:mod:`repro.analysis.montecarlo`; they moved down here so the sampling
engine and the adaptive budget allocator -- compute-tier modules -- can
score confidence widths without importing the analysis tier.  The
analysis module re-exports them, so existing imports keep working.
"""

from __future__ import annotations

import math


def wilson_interval(
    successes: int, samples: int, confidence: float = 0.95
) -> tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because solving probabilities
    sit near 0 or 1 for most configurations (the zero-one law pushes them
    to the boundary), where the naive interval misbehaves.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    z = normal_quantile(0.5 + confidence / 2)
    phat = successes / samples
    denom = 1 + z * z / samples
    centre = (phat + z * z / (2 * samples)) / denom
    margin = (
        z
        * math.sqrt(
            phat * (1 - phat) / samples + z * z / (4 * samples * samples)
        )
        / denom
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e00, -2.549732539343734e00,
         4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e00, 3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


__all__ = ["normal_quantile", "wilson_interval"]
