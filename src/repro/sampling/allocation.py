"""Adaptive sample-budget allocation over mergeable MC cells.

Simulation-optimization discipline (PyMOSO's framing): spend increments
where Wilson intervals are widest, never re-spending what a previous
round (or a previous *run*, through the memo) already bought.  Because
cell estimates are range-extensions of one fixed substream, an adaptive
schedule reaching ``m`` samples is bit-identical to a single ``m``-sample
run -- adaptivity changes only *when* you stop, not what you measure.

Also home of the common-random-numbers helper: cells sharing a stream
share trial blocks, so paired differences cancel the common noise and
their variance drops strictly below independent sampling.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..obs import OBS
from .estimator import MCEstimate, sample_range
from .kernel import BLOCK_SAMPLES, block_indicators, resolve_method

#: One substream block: the natural unit of both the first look and each
#: adaptive top-up (full blocks are what the memo can serve and store).
DEFAULT_INITIAL = BLOCK_SAMPLES
DEFAULT_INCREMENT = BLOCK_SAMPLES


def _extend(cell: Mapping, estimate: MCEstimate, by: int) -> MCEstimate:
    """Grow ``estimate`` by the next ``by`` samples of the cell's stream."""
    grown = sample_range(
        cell["alpha"],
        cell["task"],
        cell["t"],
        cell.get("ports"),
        stream_seed=cell["stream_seed"],
        start=estimate.samples,
        stop=estimate.samples + by,
        method=cell.get("method", "auto"),
        quotient=cell.get("quotient"),
        use_memo=cell.get("use_memo", True),
    )
    return estimate.merge(grown)


def _width(estimate: MCEstimate, confidence: float) -> float:
    low, high = estimate.interval(confidence)
    return high - low


def adaptive_cell_estimate(
    alpha,
    task,
    t: int,
    ports=None,
    *,
    stream_seed: int,
    target_width: float,
    confidence: float = 0.95,
    initial: int = DEFAULT_INITIAL,
    increment: int = DEFAULT_INCREMENT,
    max_samples: int = 64 * BLOCK_SAMPLES,
    method: str = "auto",
    quotient=None,
    use_memo: bool = True,
) -> MCEstimate:
    """Sample one cell until its interval is narrow enough (or the cap).

    Deterministic given the cell and the schedule parameters: stopping
    depends only on integer success counts, which are pure functions of
    the stream.
    """
    if not 0 < target_width < 1:
        raise ValueError("target_width must be in (0, 1)")
    if initial < 1 or increment < 1:
        raise ValueError("need positive initial and increment")
    cell = {
        "alpha": alpha,
        "task": task,
        "t": t,
        "ports": ports,
        "stream_seed": stream_seed,
        "method": method,
        "quotient": quotient,
        "use_memo": use_memo,
    }
    estimate = _extend(cell, MCEstimate(0, 0), min(initial, max_samples))
    while (
        _width(estimate, confidence) > target_width
        and estimate.samples < max_samples
    ):
        if OBS.enabled:
            OBS.metrics.inc("mc.allocator.rounds")
        step = min(increment, max_samples - estimate.samples)
        estimate = _extend(cell, estimate, step)
    return estimate


def allocate_budget(
    cells: Sequence[Mapping],
    total_samples: int,
    *,
    confidence: float = 0.95,
    initial: int = DEFAULT_INITIAL,
    increment: int = DEFAULT_INCREMENT,
) -> list[MCEstimate]:
    """Split a shared sample budget across cells, widest interval first.

    Every cell gets the ``initial`` look (truncated if the budget cannot
    cover it); the remainder is spent greedily on whichever estimate
    currently has the widest Wilson interval, one increment at a time.
    Ties break on cell order, so the allocation is deterministic.
    """
    if total_samples < 1:
        raise ValueError("need a positive sample budget")
    if initial < 1 or increment < 1:
        raise ValueError("need positive initial and increment")
    cells = [dict(cell) for cell in cells]
    if not cells:
        return []
    estimates: list[MCEstimate] = []
    remaining = total_samples
    for cell in cells:
        first = min(initial, max(remaining, 0))
        if first == 0:
            raise ValueError(
                f"budget {total_samples} cannot give all {len(cells)} "
                f"cells an initial look"
            )
        estimates.append(_extend(cell, MCEstimate(0, 0), first))
        remaining -= first
    while remaining > 0:
        if OBS.enabled:
            OBS.metrics.inc("mc.allocator.rounds")
        widest = max(
            range(len(cells)),
            key=lambda i: (_width(estimates[i], confidence), -i),
        )
        step = min(increment, remaining)
        estimates[widest] = _extend(cells[widest], estimates[widest], step)
        remaining -= step
    return estimates


def paired_difference(
    cell_a: Mapping,
    cell_b: Mapping,
    *,
    stream_seed: int,
    samples: int,
    confidence: float = 0.95,
) -> dict:
    """CRN paired comparison of two cells over *shared* trial blocks.

    Both cells are evaluated on the same ``(stream_seed, block)`` words,
    so the per-trial difference cancels the randomness the cells share
    and its variance sits below the independent-streams sum
    ``p_a(1-p_a) + p_b(1-p_b)`` whenever the cells are positively
    coupled.  Returns the difference estimate, the sample variance of
    the paired differences, that independent-sampling variance, and a
    normal-approximation confidence halfwidth.
    """
    if samples < 2:
        raise ValueError("need samples >= 2 for a variance estimate")
    from .stats import normal_quantile

    sum_d = 0
    sum_d2 = 0
    sum_a = 0
    sum_b = 0
    done = 0
    block = 0
    while done < samples:
        take = min(BLOCK_SAMPLES, samples - done)
        pair = []
        for cell in (cell_a, cell_b):
            indicators = block_indicators(
                cell["alpha"],
                cell["task"],
                cell["t"],
                cell.get("ports"),
                stream_seed=stream_seed,
                block=block,
                method=resolve_method(cell.get("method", "auto"), cell.get("ports")),
                quotient=cell.get("quotient"),
            )[:take]
            pair.append(indicators.astype(int))
        diff = pair[0] - pair[1]
        sum_d += int(diff.sum())
        sum_d2 += int((diff * diff).sum())
        sum_a += int(pair[0].sum())
        sum_b += int(pair[1].sum())
        done += take
        block += 1
    mean = sum_d / samples
    paired_var = (sum_d2 - samples * mean * mean) / (samples - 1)
    p_a = sum_a / samples
    p_b = sum_b / samples
    independent_var = p_a * (1 - p_a) + p_b * (1 - p_b)
    z = normal_quantile(0.5 + confidence / 2)
    return {
        "difference": mean,
        "paired_variance": paired_var,
        "independent_variance": independent_var,
        "halfwidth": z * (paired_var / samples) ** 0.5,
        "samples": samples,
    }


__all__ = [
    "DEFAULT_INCREMENT",
    "DEFAULT_INITIAL",
    "adaptive_cell_estimate",
    "allocate_budget",
    "paired_difference",
]
