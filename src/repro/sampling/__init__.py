"""Vectorized Monte-Carlo engine with mergeable, memoized substreams.

Three layers (see RUNNER.md, "Monte-Carlo substreams and the merge law"):

* :mod:`repro.sampling.kernel` -- counter-based Philox substreams in
  fixed blocks; whole-block solvability decided in numpy passes (bit
  partition refinement or compiled-chain trajectories), with the legacy
  per-trajectory loop kept as the scalar oracle.
* :mod:`repro.sampling.estimator` -- integer ``(successes, samples)``
  cells with an associative merge law, memoized per full block in the
  cross-run :mod:`repro.results` memo.
* :mod:`repro.sampling.allocation` -- adaptive budget allocation by
  Wilson-interval width, plus common-random-number paired comparisons.
"""

from .allocation import (
    adaptive_cell_estimate,
    allocate_budget,
    paired_difference,
)
from .estimator import (
    MCEstimate,
    block_token,
    cell_digest,
    sample_cell,
    sample_range,
)
from .kernel import (
    BLOCK_SAMPLES,
    METHODS,
    block_indicators,
    chain_draws,
    philox_key,
    resolve_method,
    scalar_block_indicators,
    source_words,
    words_needed,
)
from .stats import normal_quantile, wilson_interval

__all__ = [
    "BLOCK_SAMPLES",
    "METHODS",
    "MCEstimate",
    "adaptive_cell_estimate",
    "allocate_budget",
    "block_indicators",
    "block_token",
    "cell_digest",
    "chain_draws",
    "normal_quantile",
    "paired_difference",
    "philox_key",
    "resolve_method",
    "sample_cell",
    "sample_range",
    "scalar_block_indicators",
    "source_words",
    "wilson_interval",
    "words_needed",
]
