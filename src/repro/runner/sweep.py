"""Sweep orchestration: expand, schedule, execute, persist, aggregate.

:func:`run_sweep` is the runner's front door.  It expands a
:class:`~repro.runner.spec.SweepSpec` into its job list, subtracts jobs
already recorded in the run directory (if one is given), maps the rest
through the chosen engine, streams each record to disk as it completes,
and folds the full record set back into the package's uniform
:class:`~repro.analysis.result.ExperimentResult` container.

Aggregation sorts records by job index -- the position in the expanded
job list -- so the result table is identical whatever order the engine
completed the jobs in, and whatever mix of resumed and fresh records
contributed.  Timing fields are deliberately excluded from the aggregate
so two runs of the same sweep compare byte-for-byte.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass, field

from ..obs import OBS, merge_telemetry, trace
from .engines import ExecutionEngine, SerialEngine
from .persistence import RunDirectory
from .spec import SweepSpec, derive_seed, make_ports
from .worker import execute_run, execute_run_group


def _iter_job_payloads(payloads):
    """Flat job payloads, whether ``payloads`` is grouped or not."""
    for payload in payloads:
        if "jobs" in payload:
            yield from payload["jobs"]
        else:
            yield payload


#: Bell numbers B(0)..B(10): the partition count of an n-set bounds a
#: consistency chain's state count from above, so it is the stacked-
#: state proxy for chains nobody has compiled yet.
_BELL = (1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975)


def _family_state_weight(spec) -> int:
    """Estimated compiled-state count of one job family's chain.

    An already-compiled chain (process memo, under the key the active
    quotient mode would compile to) reports its true ``num_states``;
    otherwise the Bell number of ``n`` -- the number of partitions of
    the node set, an upper bound on reachable consistency states --
    stands in, divided by the automorphism group's order when the
    quotient backend will fold this family (orbit counts are bounded
    below by ``Bell(n) / |G|``), and capped at the group budget so one
    huge family cannot zero out everyone else's bin space.  Random-port
    families draw a fresh chain per job, so they always use the
    estimate.
    """
    from ..chain import (
        MAX_GROUP_STATES,
        automorphism_count,
        effective_chain_key,
        is_quotient_key,
        memoized_chain,
    )
    from ..randomness.configuration import RandomnessConfiguration

    key = None
    if spec.ports != "random":
        alpha = RandomnessConfiguration.from_group_sizes(spec.sizes)
        ports = make_ports(spec.ports, spec.sizes, 0)
        key = effective_chain_key(alpha, ports)
        chain = memoized_chain(key)
        if chain is not None:
            return chain.num_states
    n = spec.n
    estimate = _BELL[n] if n < len(_BELL) else _BELL[-1]
    if key is not None and is_quotient_key(key):
        estimate = max(1, math.ceil(estimate / automorphism_count(key)))
    return min(estimate, MAX_GROUP_STATES)


def _group_job_payloads(jobs, payloads, engine):
    """Pack contiguous chain families into group payloads, or ``None``.

    The sweep grammar expands tasks (and replicates) innermost, so jobs
    sharing one compiled chain -- same sizes/model/ports/replicate --
    are contiguous index runs; packing whole runs into bins keeps each
    bin a contiguous index range, which is what makes grouped run
    directories byte-identical to serial ungrouped ones (records land
    in index order either way).

    Bins are budgeted by **stacked states**, not job count: each run
    weighs its family's (estimated) compiled-state count
    (:func:`_family_state_weight`), the per-bin budget is the total
    weight split over four bins per pool worker, and no bin ever
    exceeds the active group-state budget
    (:func:`~repro.chain.multi.group_state_budget`:
    :data:`~repro.chain.multi.MAX_GROUP_STATES`, or tighter under
    ``--policy measured``) -- so a shape axis mixing n=3 and n=8
    families no longer hands one worker all the heavy chains that
    another worker's job-count-equal bin dodged.
    Returns ``None`` -- dispatch one payload per job exactly as before
    -- when grouping is off, the sweep is sampling-kind (Monte-Carlo
    jobs gain nothing from a shared chain pass), or there is at most
    one job.
    """
    from ..chain import group_state_budget, grouping_enabled

    if not grouping_enabled() or len(payloads) < 2:
        return None
    if any(jobs[p["index"]].kind != "exact" for p in payloads):
        return None
    runs: list[list[dict]] = []
    weights: list[int] = []
    marker = None
    for payload in payloads:
        spec = jobs[payload["index"]]
        family = (spec.sizes, spec.model, spec.ports, spec.replicate)
        if family != marker:
            marker = family
            runs.append([])
            weights.append(_family_state_weight(spec))
        runs[-1].append(payload)
    workers = getattr(engine, "workers", 1) or 1
    bins = max(1, min(len(runs), workers * 4))
    budget = min(
        group_state_budget(), max(1, math.ceil(sum(weights) / bins))
    )
    groups: list[list[dict]] = []
    current: list[dict] = []
    current_weight = 0
    for run, weight in zip(runs, weights):
        if current and current_weight + weight > budget:
            groups.append(current)
            current = []
            current_weight = 0
        current.extend(run)
        current_weight += weight
    if current:
        groups.append(current)
    context_keys = (
        "chain_cache", "batch", "group_chains", "quotient",
        "results_memo", "obs", "policy", "live",
    )
    return [
        {
            "jobs": group,
            **{
                key: group[0][key]
                for key in context_keys
                if key in group[0]
            },
        }
        for group in groups
    ]


def _publish_shared_chains(jobs, payloads, directory):
    """Publish the sweep's deterministic chains to shared memory.

    Every ``kind="exact"`` job with a non-random port assignment uses a
    chain fully determined by its spec, so the parent can place each
    distinct chain's arrays in shared memory once and let workers attach
    by chain key instead of unpickling from disk.  To avoid stalling the
    pool behind serial parent-side compilation, cold chains are only
    compiled here when the sweep has *no* run directory (no disk cache
    for workers to share through -- parent-compiling once still beats
    every worker compiling its own copy); with a run directory, the
    parent publishes what loads warm from the disk cache / memo and
    leaves cold chains to the workers, which share them through the
    cache exactly as before (and publish warm on the next resume).
    Random-port and sampling jobs are always left to the workers (their
    chains are one-shot / unneeded).  Returns the live
    :class:`~repro.chain.shm.SharedChainStore` (the caller closes it
    once the engine has drained) or ``None`` when there is nothing to
    share or shared memory is unavailable on this platform.

    Chains are keyed by their *effective* key -- structural key plus
    the quotient tag the active quotient mode resolves to -- so workers
    compiling under the same mode attach exactly what was published.
    On top of the chains themselves, each grouped payload whose member
    chains all published warm also gets its predicted
    :class:`~repro.chain.multi.ChainGroup` stacks published as prebuilt
    index arrays (:func:`~repro.chain.multi.plan_chunks` is the shared
    chunking rule), so workers running grouped float passes attach
    finished groups instead of rebuilding them.
    """
    from ..chain import (
        compile_chain,
        configure_disk_cache,
        disk_cache,
        effective_chain_key,
        memoized_chain,
    )
    from ..chain.shm import SharedChainStore
    from ..randomness.configuration import RandomnessConfiguration

    shareable = []
    seen = set()
    for payload in _iter_job_payloads(payloads):
        spec = jobs[payload["index"]]
        if spec.kind != "exact" or spec.ports == "random":
            continue
        marker = (spec.sizes, spec.ports)
        if marker not in seen:
            seen.add(marker)
            shareable.append(spec)
    if not shareable:
        return None
    if directory is not None:
        # Warm loads: the parent reads the run directory's disk cache so
        # resumed sweeps publish without recompiling anything.
        configure_disk_cache(str(directory.path / "chains"))
    store = SharedChainStore()
    try:
        chains = []
        warm_chains: dict[tuple, object] = {}
        for spec in shareable:
            alpha = RandomnessConfiguration.from_group_sizes(spec.sizes)
            ports = make_ports(spec.ports, spec.sizes, 0)
            key = effective_chain_key(alpha, ports)
            chain = memoized_chain(key)
            if chain is None and directory is not None:
                warm = disk_cache()
                chain = warm.load(key) if warm is not None else None
            if chain is None:
                if directory is not None:
                    continue  # cold + disk-cached sweep: workers share it
                chain = compile_chain(alpha, ports)
            chains.append(chain)
            warm_chains[(spec.sizes, spec.ports)] = chain
        # One segment for the whole sweep: workers attach it once and
        # read every chain at a byte offset.
        store.publish_group(chains)
        _publish_shared_groups(store, jobs, payloads, warm_chains)
    except OSError:
        # No (or full) /dev/shm: fall back to the disk-cache-only path.
        store.close()
        return None
    if not len(store):
        store.close()
        return None
    manifest = store.manifest
    group_manifest = store.group_manifest
    for payload in payloads:
        payload["chain_shm"] = manifest
        if group_manifest:
            payload["chain_shm_groups"] = group_manifest
    return store


def _publish_shared_groups(store, jobs, payloads, warm_chains) -> None:
    """Publish each grouped payload's predicted ChainGroup stacks.

    A worker's grouped pass stacks the payload's *distinct* chains in
    job order, chunked by :func:`~repro.chain.multi.plan_chunks`; with
    every member chain published warm, the parent predicts those chunks
    exactly and publishes each multi-chain chunk's built index arrays.
    Payloads containing any cold (or non-deterministic) chain are
    skipped -- the worker would stack a different chain list, and the
    attach-side digest validation would reject the arrays anyway.
    """
    from ..chain import ChainGroup, plan_chunks

    for payload in payloads:
        members = payload.get("jobs")
        if not members or len(members) < 2:
            continue
        distinct: list = []
        seen_ids: set[int] = set()
        predictable = True
        for job in members:
            spec = jobs[job["index"]]
            chain = warm_chains.get((spec.sizes, spec.ports))
            if spec.ports == "random" or chain is None:
                predictable = False
                break
            if id(chain) not in seen_ids:
                seen_ids.add(id(chain))
                distinct.append(chain)
        if not predictable:
            continue
        for chunk in plan_chunks(distinct):
            if len(chunk) >= 2:
                store.publish_group_arrays(ChainGroup(chunk))


@dataclass
class SweepOutcome:
    """What a sweep produced: records, the aggregate, and run accounting."""

    sweep: SweepSpec
    #: All job records, sorted by job index (resumed and fresh alike).
    records: list[dict]
    #: How many jobs ran in this invocation.
    executed: int
    #: How many jobs were skipped because the run directory had them.
    resumed: int
    #: Per-group diagnostics from grouped dispatch (stacked size,
    #: density, evolution verdict, memo hits); lands in the warehouse's
    #: ``groups`` table, never in the job records.
    group_stats: list[dict] = field(default_factory=list)
    #: Fields like the aggregate are derived; see :meth:`result`.
    _result: "object | None" = field(default=None, repr=False)

    @property
    def total(self) -> int:
        """Total number of jobs in the expanded sweep."""
        return len(self.records)

    def result(self):
        """The aggregate as an ``ExperimentResult`` (computed lazily)."""
        if self._result is None:
            self._result = aggregate_records(self.sweep, self.records)
        return self._result


def aggregate_records(sweep: SweepSpec, records: list[dict]):
    """Fold job records into an ``ExperimentResult`` table.

    One row per job, in job-index order.  Exact sweeps report the limit
    probability and a yes/no solvability verdict; sampling sweeps report
    the estimate with its Wilson confidence interval.
    """
    from ..analysis.montecarlo import wilson_interval
    from ..analysis.result import ExperimentResult

    ordered = sorted(records, key=lambda r: r["index"])
    rows = []
    for record in ordered:
        spec = record["spec"]
        value = record["value"]
        base = (
            tuple(spec["sizes"]),
            record["gcd"],
            spec["model"],
            spec["ports"],
            spec["task"],
            spec["replicate"],
        )
        if sweep.kind == "exact":
            rows.append(
                base
                + (value["limit"], "yes" if value["solvable"] else "no")
            )
        else:
            low, high = wilson_interval(
                value["successes"], value["samples"]
            )
            rows.append(
                base
                + (
                    f"{value['estimate']:.4f}",
                    f"[{low:.4f}, {high:.4f}]",
                    value["samples"],
                )
            )
    value_headers = (
        ("limit", "solvable")
        if sweep.kind == "exact"
        else ("estimate", "wilson 95%", "samples")
    )
    return ExperimentResult(
        experiment_id="runner-sweep",
        title=(
            f"{sweep.kind} sweep: {len(ordered)} jobs over "
            f"{len(sweep.shapes)} shapes (master seed {sweep.master_seed})"
        ),
        headers=("sizes", "gcd", "model", "ports", "task", "rep")
        + value_headers,
        rows=rows,
        notes=[
            "per-job seeds derive from (master_seed, job_key); results "
            "are engine- and worker-count-independent"
        ],
    )


def run_sweep(
    sweep: SweepSpec,
    engine: ExecutionEngine | None = None,
    run_dir: "str | pathlib.Path | None" = None,
    progress=None,
    warehouse: "str | pathlib.Path | bool | None" = None,
    live: "bool | dict | None" = None,
) -> SweepOutcome:
    """Execute a sweep, optionally resuming from a run directory.

    ``engine`` defaults to :class:`~repro.runner.engines.SerialEngine`.
    With ``run_dir``, each completed job is appended to
    ``records.jsonl`` immediately, and jobs already recorded there are
    not re-run.  ``progress`` (if given) is called with each fresh record
    as it completes.

    ``live`` (needs a run directory) turns on the in-flight telemetry
    side channel (:mod:`repro.obs.live`, OBS.md "Live operation"):
    workers append heartbeats under ``<run_dir>/heartbeats/``, a
    monitor thread folds them into schema-validated progress events in
    ``<run_dir>/progress.jsonl``, and a stall watchdog flags workers
    whose heartbeat age exceeds the deadline.  Pass ``True`` for the
    defaults or a dict of :class:`~repro.obs.live.LiveConfig` fields
    (``interval``, ``poll``, ``deadline``, ``action``, ``max_reaps``);
    ``action="cancel"`` lets the watchdog reap a stalled pool and
    resubmit the unfinished jobs deterministically.  Live telemetry
    never touches the record path: ``records.jsonl`` is byte-identical
    with ``live`` on or off.

    ``warehouse`` names the columnar results warehouse
    (:class:`~repro.results.store.ResultsStore`) the sweep serves and
    feeds: completed records are ingested incrementally (watermarked,
    so resumed runs ingest only what is new), resume reads column pages
    instead of re-parsing JSONL when the warehouse fully covers the run
    directory, and every worker consults the warehouse's cross-run
    query memo before computing a cell -- a sweep whose cells another
    run already answered re-executes nothing but record writes.  This
    covers sampling sweeps too: Monte-Carlo cells memoize integer
    success counts per substream block (see RUNNER.md, "Monte-Carlo
    substreams and the merge law"), so a warm rerun serves whole cells
    from the memo and a rerun at a *larger* budget computes only the
    increment, merging it with the memoized blocks into one combined
    estimate.  It
    defaults to ``<run_dir>/warehouse`` when a run directory is given
    (pass ``False`` to opt out); point several sweeps at one shared
    warehouse to deduplicate work across them.
    """
    engine = engine or SerialEngine()
    jobs = sweep.expand()
    payloads = [
        {"spec": spec.to_dict(), "master_seed": sweep.master_seed, "index": i}
        for i, spec in enumerate(jobs)
    ]
    directory: RunDirectory | None = None
    prior: list[dict] = []
    if warehouse is None and run_dir is not None:
        warehouse = pathlib.Path(run_dir) / "warehouse"
    store = None
    if warehouse:
        from ..results.store import ResultsStore

        store = ResultsStore(warehouse)
        for payload in payloads:
            payload["results_memo"] = str(store.memo_dir)
    if run_dir is not None:
        directory = RunDirectory(run_dir)
        # Persist compiled chains next to the records: every worker (and
        # every resumed run) then compiles each (alpha, ports) chain at
        # most once, sweep-wide.
        chain_cache = str(directory.path / "chains")
        for payload in payloads:
            payload["chain_cache"] = chain_cache
        directory.write_manifest(
            {
                "sweep": sweep.to_dict(),
                "jobs": [spec.job_key for spec in jobs],
            }
        )
        valid = {
            spec.job_key: derive_seed(sweep.master_seed, spec.job_key)
            for spec in jobs
        }
        key_to_index = {spec.job_key: i for i, spec in enumerate(jobs)}
        done = set()
        existing: "list[dict] | None" = None
        if store is not None:
            # Catch the watermark up, then serve the resume scan from
            # column pages instead of re-parsing JSONL (``None`` -- an
            # uncovered tail -- falls back to the line scan).
            store.ingest_run_directory(directory)
            existing = store.run_directory_records(directory)
        if existing is None:
            existing = directory.load_records()
        for record in existing:
            key = record.get("key")
            # The seed check rejects records produced under a different
            # master seed (job keys alone don't encode it), so stale
            # cross-seed records can never leak into the aggregate.
            if (
                key in valid
                and key not in done
                and record.get("seed") == valid[key]
            ):
                done.add(key)
                # Re-anchor the index to THIS sweep's expansion: a
                # hand-copied record may carry another sweep's position.
                prior.append({**record, "index": key_to_index[key]})
        payloads = [
            p for p in payloads if jobs[p["index"]].job_key not in done
        ]
    from .worker import chain_context_payload

    context = chain_context_payload()
    monitor = None
    if live and directory is not None:
        from ..obs.live import LiveConfig, SweepMonitor

        config = LiveConfig.from_payload(
            live if isinstance(live, (dict, LiveConfig)) else None
        )
        context = {
            **context,
            # The heartbeat side channel is sweep-specific context,
            # like chain_cache: workers append to their own log under
            # the run directory, far from the record return path.
            "live": {
                "dir": str(directory.heartbeat_dir),
                "interval": config.interval,
            },
        }
        monitor = SweepMonitor(
            directory.path,
            total=len(jobs),
            config=config,
            engine=engine,
            resumed=len(prior),
        )
    for payload in payloads:
        # Propagate the parent's chain context (e.g. the CLI --no-batch
        # toggle) into pool workers; results are identical either way.
        payload.update(context)
    # The shape-grouping dispatcher: hand each worker one group payload
    # (one shared-memory attach, one grouped query pass) per slice of
    # the grid instead of one payload per grid point.
    grouped = _group_job_payloads(jobs, payloads, engine)
    dispatch = payloads if grouped is None else grouped
    worker_fn = execute_run if grouped is None else execute_run_group
    shm_store = None
    executed = 0
    fresh: list[dict] = []
    group_stats: list[dict] = []
    try:
        if dispatch and getattr(engine, "supports_shared_chains", False):
            with trace("sweep.publish"):
                shm_store = _publish_shared_chains(jobs, dispatch, directory)
        if monitor is not None:
            monitor.start()
            from ..obs.live import monitored_map

            results = monitored_map(engine, worker_fn, dispatch, monitor)
        else:
            results = engine.map(worker_fn, dispatch)
        with trace("sweep.execute", jobs=len(dispatch)):
            for result in results:
                # Workers attach their drained telemetry *next to* the
                # record payload; fold it into this process before
                # anything is persisted, so record bytes are identical
                # with tracing on or off.  (Serial engines drain and
                # merge back in-process: a no-op for the totals.)
                telemetry = result.pop(
                    "telemetry" if grouped is not None else "_telemetry",
                    None,
                )
                if telemetry is not None:
                    merge_telemetry(telemetry)
                if grouped is not None and "group" in result:
                    group_stats.append(
                        {**result["group"], "master_seed": sweep.master_seed}
                    )
                for record in (
                    (result,) if grouped is None else result["records"]
                ):
                    if directory is not None:
                        directory.append(record)
                    fresh.append(record)
                    executed += 1
                    if monitor is not None:
                        monitor.note_record(record)
                    if progress is not None:
                        progress(record)
    finally:
        if monitor is not None:
            # Flush the final progress event (``event: "end"``) and stop
            # the monitor thread, then detach any in-process heartbeat
            # emitter a serial engine installed -- same detach contract
            # as the disk cache below.
            monitor.stop()
            from ..obs.live import configure_heartbeat

            configure_heartbeat(None)
        if shm_store is not None:
            # Unlinking is safe while workers still hold mappings; only
            # the names disappear, live views stay valid until exit.
            shm_store.close()
        if directory is not None:
            # Serial engines execute jobs in THIS process, installing the
            # sweep's disk cache process-wide -- and publishing shared
            # chains configures it in the parent too (only ever with a
            # run directory); detach it so later work does not keep
            # writing into a finished run directory.  Without a run dir
            # nothing here touched the cache, so a caller-installed one
            # stays installed.  (Pool workers detach at their next
            # cache-less payload.)
            from ..chain import configure_disk_cache

            configure_disk_cache(None)
        if store is not None:
            # Same deal for the query memo a serial engine installed
            # in-process.
            from ..results.memo import configure_query_memo

            configure_query_memo(None)
            # Land what this invocation produced: the fresh job records
            # (watermarked -- only the new JSONL bytes are read) and the
            # grouped-dispatch diagnostics.
            try:
                with trace("sweep.ingest"):
                    if directory is not None:
                        store.ingest_run_directory(directory)
                    if group_stats:
                        from ..results.store import GROUP_COLUMNS

                        store.append_rows(
                            "groups", group_stats, GROUP_COLUMNS
                        )
                if OBS.enabled:
                    # Land the folded sweep telemetry as queryable rows
                    # (``repro results query --table telemetry``).  The
                    # snapshot is taken *after* the ingest above so the
                    # store's own counters are included.
                    from ..obs import clock, telemetry_rows
                    from ..results.store import TELEMETRY_COLUMNS

                    rows = telemetry_rows()
                    stamp = clock.now()
                    for row in rows:
                        row["stamp"] = stamp
                        row["master_seed"] = sweep.master_seed
                    if rows:
                        store.append_rows(
                            "telemetry", rows, TELEMETRY_COLUMNS
                        )
            except OSError:
                pass  # the warehouse is derived state; never fail a sweep
    records = sorted(prior + fresh, key=lambda r: r["index"])
    return SweepOutcome(
        sweep=sweep,
        records=records,
        executed=executed,
        resumed=len(prior),
        group_stats=group_stats,
    )


__all__ = ["SweepOutcome", "aggregate_records", "run_sweep"]
