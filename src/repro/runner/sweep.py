"""Sweep orchestration: expand, schedule, execute, persist, aggregate.

:func:`run_sweep` is the runner's front door.  It expands a
:class:`~repro.runner.spec.SweepSpec` into its job list, subtracts jobs
already recorded in the run directory (if one is given), maps the rest
through the chosen engine, streams each record to disk as it completes,
and folds the full record set back into the package's uniform
:class:`~repro.analysis.result.ExperimentResult` container.

Aggregation sorts records by job index -- the position in the expanded
job list -- so the result table is identical whatever order the engine
completed the jobs in, and whatever mix of resumed and fresh records
contributed.  Timing fields are deliberately excluded from the aggregate
so two runs of the same sweep compare byte-for-byte.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass, field

from .engines import ExecutionEngine, SerialEngine
from .persistence import RunDirectory
from .spec import SweepSpec, derive_seed, make_ports
from .worker import execute_run, execute_run_group


def _iter_job_payloads(payloads):
    """Flat job payloads, whether ``payloads`` is grouped or not."""
    for payload in payloads:
        if "jobs" in payload:
            yield from payload["jobs"]
        else:
            yield payload


def _group_job_payloads(jobs, payloads, engine):
    """Pack contiguous chain families into group payloads, or ``None``.

    The sweep grammar expands tasks (and replicates) innermost, so jobs
    sharing one compiled chain -- same sizes/model/ports/replicate --
    are contiguous index runs; packing whole runs into bins keeps each
    bin a contiguous index range, which is what makes grouped run
    directories byte-identical to serial ungrouped ones (records land
    in index order either way).  Bins target four groups per pool
    worker so stragglers rebalance.  Returns ``None`` -- dispatch one
    payload per job exactly as before -- when grouping is off, the
    sweep is sampling-kind (Monte-Carlo jobs gain nothing from a
    shared chain pass), or there is at most one job.
    """
    from ..chain import grouping_enabled

    if not grouping_enabled() or len(payloads) < 2:
        return None
    if any(jobs[p["index"]].kind != "exact" for p in payloads):
        return None
    runs: list[list[dict]] = []
    marker = None
    for payload in payloads:
        spec = jobs[payload["index"]]
        family = (spec.sizes, spec.model, spec.ports, spec.replicate)
        if family != marker:
            marker = family
            runs.append([])
        runs[-1].append(payload)
    workers = getattr(engine, "workers", 1) or 1
    bins = max(1, min(len(runs), workers * 4))
    per_bin = math.ceil(len(payloads) / bins)
    groups: list[list[dict]] = []
    current: list[dict] = []
    for run in runs:
        if current and len(current) + len(run) > per_bin:
            groups.append(current)
            current = []
        current.extend(run)
    if current:
        groups.append(current)
    context_keys = ("chain_cache", "batch", "group_chains")
    return [
        {
            "jobs": group,
            **{
                key: group[0][key]
                for key in context_keys
                if key in group[0]
            },
        }
        for group in groups
    ]


def _publish_shared_chains(jobs, payloads, directory):
    """Publish the sweep's deterministic chains to shared memory.

    Every ``kind="exact"`` job with a non-random port assignment uses a
    chain fully determined by its spec, so the parent can place each
    distinct chain's arrays in shared memory once and let workers attach
    by chain key instead of unpickling from disk.  To avoid stalling the
    pool behind serial parent-side compilation, cold chains are only
    compiled here when the sweep has *no* run directory (no disk cache
    for workers to share through -- parent-compiling once still beats
    every worker compiling its own copy); with a run directory, the
    parent publishes what loads warm from the disk cache / memo and
    leaves cold chains to the workers, which share them through the
    cache exactly as before (and publish warm on the next resume).
    Random-port and sampling jobs are always left to the workers (their
    chains are one-shot / unneeded).  Returns the live
    :class:`~repro.chain.shm.SharedChainStore` (the caller closes it
    once the engine has drained) or ``None`` when there is nothing to
    share or shared memory is unavailable on this platform.
    """
    from ..chain import (
        chain_key,
        compile_chain,
        configure_disk_cache,
        disk_cache,
        memoized_chain,
    )
    from ..chain.shm import SharedChainStore
    from ..randomness.configuration import RandomnessConfiguration

    shareable = []
    seen = set()
    for payload in _iter_job_payloads(payloads):
        spec = jobs[payload["index"]]
        if spec.kind != "exact" or spec.ports == "random":
            continue
        marker = (spec.sizes, spec.ports)
        if marker not in seen:
            seen.add(marker)
            shareable.append(spec)
    if not shareable:
        return None
    if directory is not None:
        # Warm loads: the parent reads the run directory's disk cache so
        # resumed sweeps publish without recompiling anything.
        configure_disk_cache(str(directory.path / "chains"))
    store = SharedChainStore()
    try:
        chains = []
        for spec in shareable:
            alpha = RandomnessConfiguration.from_group_sizes(spec.sizes)
            ports = make_ports(spec.ports, spec.sizes, 0)
            key = chain_key(alpha, ports)
            chain = memoized_chain(key)
            if chain is None and directory is not None:
                warm = disk_cache()
                chain = warm.load(key) if warm is not None else None
            if chain is None:
                if directory is not None:
                    continue  # cold + disk-cached sweep: workers share it
                chain = compile_chain(alpha, ports)
            chains.append(chain)
        # One segment for the whole sweep: workers attach it once and
        # read every chain at a byte offset.
        store.publish_group(chains)
    except OSError:
        # No (or full) /dev/shm: fall back to the disk-cache-only path.
        store.close()
        return None
    if not len(store):
        store.close()
        return None
    manifest = store.manifest
    for payload in payloads:
        payload["chain_shm"] = manifest
    return store


@dataclass
class SweepOutcome:
    """What a sweep produced: records, the aggregate, and run accounting."""

    sweep: SweepSpec
    #: All job records, sorted by job index (resumed and fresh alike).
    records: list[dict]
    #: How many jobs ran in this invocation.
    executed: int
    #: How many jobs were skipped because the run directory had them.
    resumed: int
    #: Fields like the aggregate are derived; see :meth:`result`.
    _result: "object | None" = field(default=None, repr=False)

    @property
    def total(self) -> int:
        """Total number of jobs in the expanded sweep."""
        return len(self.records)

    def result(self):
        """The aggregate as an ``ExperimentResult`` (computed lazily)."""
        if self._result is None:
            self._result = aggregate_records(self.sweep, self.records)
        return self._result


def aggregate_records(sweep: SweepSpec, records: list[dict]):
    """Fold job records into an ``ExperimentResult`` table.

    One row per job, in job-index order.  Exact sweeps report the limit
    probability and a yes/no solvability verdict; sampling sweeps report
    the estimate with its Wilson confidence interval.
    """
    from ..analysis.montecarlo import wilson_interval
    from ..analysis.result import ExperimentResult

    ordered = sorted(records, key=lambda r: r["index"])
    rows = []
    for record in ordered:
        spec = record["spec"]
        value = record["value"]
        base = (
            tuple(spec["sizes"]),
            record["gcd"],
            spec["model"],
            spec["ports"],
            spec["task"],
            spec["replicate"],
        )
        if sweep.kind == "exact":
            rows.append(
                base
                + (value["limit"], "yes" if value["solvable"] else "no")
            )
        else:
            low, high = wilson_interval(
                value["successes"], value["samples"]
            )
            rows.append(
                base
                + (
                    f"{value['estimate']:.4f}",
                    f"[{low:.4f}, {high:.4f}]",
                    value["samples"],
                )
            )
    value_headers = (
        ("limit", "solvable")
        if sweep.kind == "exact"
        else ("estimate", "wilson 95%", "samples")
    )
    return ExperimentResult(
        experiment_id="runner-sweep",
        title=(
            f"{sweep.kind} sweep: {len(ordered)} jobs over "
            f"{len(sweep.shapes)} shapes (master seed {sweep.master_seed})"
        ),
        headers=("sizes", "gcd", "model", "ports", "task", "rep")
        + value_headers,
        rows=rows,
        notes=[
            "per-job seeds derive from (master_seed, job_key); results "
            "are engine- and worker-count-independent"
        ],
    )


def run_sweep(
    sweep: SweepSpec,
    engine: ExecutionEngine | None = None,
    run_dir: "str | pathlib.Path | None" = None,
    progress=None,
) -> SweepOutcome:
    """Execute a sweep, optionally resuming from a run directory.

    ``engine`` defaults to :class:`~repro.runner.engines.SerialEngine`.
    With ``run_dir``, each completed job is appended to
    ``records.jsonl`` immediately, and jobs already recorded there are
    not re-run.  ``progress`` (if given) is called with each fresh record
    as it completes.
    """
    engine = engine or SerialEngine()
    jobs = sweep.expand()
    payloads = [
        {"spec": spec.to_dict(), "master_seed": sweep.master_seed, "index": i}
        for i, spec in enumerate(jobs)
    ]
    directory: RunDirectory | None = None
    prior: list[dict] = []
    if run_dir is not None:
        directory = RunDirectory(run_dir)
        # Persist compiled chains next to the records: every worker (and
        # every resumed run) then compiles each (alpha, ports) chain at
        # most once, sweep-wide.
        chain_cache = str(directory.path / "chains")
        for payload in payloads:
            payload["chain_cache"] = chain_cache
        directory.write_manifest(
            {
                "sweep": sweep.to_dict(),
                "jobs": [spec.job_key for spec in jobs],
            }
        )
        valid = {
            spec.job_key: derive_seed(sweep.master_seed, spec.job_key)
            for spec in jobs
        }
        key_to_index = {spec.job_key: i for i, spec in enumerate(jobs)}
        done = set()
        for record in directory.load_records():
            key = record.get("key")
            # The seed check rejects records produced under a different
            # master seed (job keys alone don't encode it), so stale
            # cross-seed records can never leak into the aggregate.
            if (
                key in valid
                and key not in done
                and record.get("seed") == valid[key]
            ):
                done.add(key)
                # Re-anchor the index to THIS sweep's expansion: a
                # hand-copied record may carry another sweep's position.
                prior.append({**record, "index": key_to_index[key]})
        payloads = [
            p for p in payloads if jobs[p["index"]].job_key not in done
        ]
    from .worker import chain_context_payload

    context = chain_context_payload()
    for payload in payloads:
        # Propagate the parent's chain context (e.g. the CLI --no-batch
        # toggle) into pool workers; results are identical either way.
        payload.update(context)
    # The shape-grouping dispatcher: hand each worker one group payload
    # (one shared-memory attach, one grouped query pass) per slice of
    # the grid instead of one payload per grid point.
    grouped = _group_job_payloads(jobs, payloads, engine)
    dispatch = payloads if grouped is None else grouped
    worker_fn = execute_run if grouped is None else execute_run_group
    store = None
    executed = 0
    fresh: list[dict] = []
    try:
        if dispatch and getattr(engine, "supports_shared_chains", False):
            store = _publish_shared_chains(jobs, dispatch, directory)
        for result in engine.map(worker_fn, dispatch):
            for record in (
                (result,) if grouped is None else result["records"]
            ):
                if directory is not None:
                    directory.append(record)
                fresh.append(record)
                executed += 1
                if progress is not None:
                    progress(record)
    finally:
        if store is not None:
            # Unlinking is safe while workers still hold mappings; only
            # the names disappear, live views stay valid until exit.
            store.close()
        if directory is not None:
            # Serial engines execute jobs in THIS process, installing the
            # sweep's disk cache process-wide -- and publishing shared
            # chains configures it in the parent too (only ever with a
            # run directory); detach it so later work does not keep
            # writing into a finished run directory.  Without a run dir
            # nothing here touched the cache, so a caller-installed one
            # stays installed.  (Pool workers detach at their next
            # cache-less payload.)
            from ..chain import configure_disk_cache

            configure_disk_cache(None)
    records = sorted(prior + fresh, key=lambda r: r["index"])
    return SweepOutcome(
        sweep=sweep,
        records=records,
        executed=executed,
        resumed=len(prior),
    )


__all__ = ["SweepOutcome", "aggregate_records", "run_sweep"]
