"""Execution engines: serial and process-pool job mapping.

An engine maps a picklable worker function over a list of payloads and
yields the results **in payload order** -- the one contract the rest of
the runner relies on.  Because every job derives its own seed from the
sweep's master seed and its key (see :mod:`repro.runner.spec`), the
engines are interchangeable: ``SerialEngine`` and ``ProcessPoolEngine``
with any worker count produce identical results, differing only in
wall-clock time.

Results are yielded lazily so the persistence layer can append each
record to its JSONL log as soon as the engine hands it back.  With the
process pool that hand-back is per *chunk* in submission order (the
``Executor.map`` contract), so a killed sweep re-runs every finished job
not yet yielded in order -- typically around ``workers * chunksize``
jobs, but more if an early chunk straggles behind later ones.  Resumes
are always safe (jobs re-run; records never corrupt), just not always
minimal.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator


class ExecutionEngine(abc.ABC):
    """Maps a worker function over payloads, preserving payload order."""

    #: Engine name as spelled on the CLI (``--engine``).
    name: str = "abstract"

    #: Whether this engine's workers run in separate processes that can
    #: attach chains published to shared memory (``repro.chain.shm``).
    #: ``run_sweep`` consults this to decide whether publishing a
    #: :class:`~repro.chain.shm.SharedChainStore` is worthwhile; in-
    #: process engines share the compile memo directly and never need one.
    supports_shared_chains: bool = False

    @abc.abstractmethod
    def map(
        self, fn: Callable[[dict], dict], payloads: Iterable[dict]
    ) -> Iterator[dict]:
        """Yield ``fn(payload)`` for each payload, in order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialEngine(ExecutionEngine):
    """In-process execution, one job at a time (the default path)."""

    name = "serial"

    def map(
        self, fn: Callable[[dict], dict], payloads: Iterable[dict]
    ) -> Iterator[dict]:
        """Yield ``fn(payload)`` lazily, in payload order."""
        return (fn(payload) for payload in payloads)


class ProcessPoolEngine(ExecutionEngine):
    """``concurrent.futures`` process-pool execution with chunked dispatch.

    ``workers`` defaults to ``os.cpu_count()``; ``chunksize`` defaults to
    roughly four chunks per worker so stragglers rebalance while keeping
    pickling overhead amortized.  Worker functions must be module-level
    (see :mod:`repro.runner.worker`) so they pickle by reference.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        chunksize: int | None = None,
        *,
        shared_chains: bool = True,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.workers = workers or os.cpu_count() or 1
        self.chunksize = chunksize
        #: ``shared_chains=False`` opts a pool out of shared-memory
        #: chain distribution (workers fall back to the disk cache).
        self.supports_shared_chains = shared_chains

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessPoolEngine(workers={self.workers})"

    def map(
        self, fn: Callable[[dict], dict], payloads: Iterable[dict]
    ) -> Iterator[dict]:
        """Yield ``fn(payload)`` in payload order, computed on the pool.

        Sized inputs (lists/tuples) go through ``Executor.map`` with
        chunked dispatch.  Other iterables are *streamed*: payloads are
        submitted in a bounded window of ``workers * 4`` outstanding
        futures, so memory stays proportional to the window, not the
        full payload stream (callers like the worst-case port sweep
        generate far more payloads than fit in RAM).
        """
        if isinstance(payloads, (list, tuple)):
            payloads = list(payloads)
            if not payloads:
                return iter(())
            chunksize = self.chunksize or max(
                1, len(payloads) // (self.workers * 4)
            )

            def generate() -> Iterator[dict]:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    self._active = pool
                    try:
                        yield from pool.map(
                            fn, payloads, chunksize=chunksize
                        )
                    finally:
                        self._active = None

            return generate()
        return self._map_streaming(fn, payloads)

    def _map_streaming(
        self, fn: Callable[[dict], dict], payloads: Iterable[dict]
    ) -> Iterator[dict]:
        """Order-preserving map over an unsized stream, bounded backlog."""
        from collections import deque

        def generate() -> Iterator[dict]:
            backlog = self.workers * 4
            pending: deque = deque()
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                self._active = pool
                try:
                    for payload in payloads:
                        pending.append(pool.submit(fn, payload))
                        if len(pending) >= backlog:
                            yield pending.popleft().result()
                    while pending:
                        yield pending.popleft().result()
                finally:
                    self._active = None

        return generate()

    #: The executor currently draining a :meth:`map` call, if any
    #: (set by the map generators; :meth:`terminate` targets it).
    _active: "ProcessPoolExecutor | None" = None

    def terminate(self) -> bool:
        """Kill the live pool's worker processes; ``True`` if any died.

        The stall watchdog's ``cancel`` action: terminating the
        workers makes the in-flight ``map`` iterator raise
        ``BrokenProcessPool``, which
        :func:`repro.obs.live.monitored_map` catches to resubmit every
        job not yet yielded on a fresh pool.  Safe to call from the
        monitor thread while the main thread blocks inside ``map``;
        a no-op (``False``) when no map is in flight.
        """
        pool = self._active
        if pool is None:
            return False
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
        return bool(processes)


#: CLI spellings of the built-in engines.
ENGINE_NAMES = ("serial", "process")


def make_engine(
    name: str,
    workers: int | None = None,
    chunksize: int | None = None,
) -> ExecutionEngine:
    """Build an engine from its CLI spelling (``serial`` or ``process``)."""
    if name == "serial":
        return SerialEngine()
    if name == "process":
        return ProcessPoolEngine(workers=workers, chunksize=chunksize)
    raise ValueError(f"unknown engine {name!r}")


__all__ = [
    "ENGINE_NAMES",
    "ExecutionEngine",
    "ProcessPoolEngine",
    "SerialEngine",
    "make_engine",
]
