"""Job execution functions, safe to ship into worker processes.

Everything here is a module-level function taking one JSON-ish payload
dict and returning one JSON-ish record dict, so ``ProcessPoolExecutor``
can pickle the callable by reference and the arguments by value.  The
payload carries the sweep's master seed; the job's private seed is
re-derived *inside* the worker from ``(master_seed, job_key)``, so the
result cannot depend on which worker ran the job or in what order.

Imports of :mod:`repro.analysis` stay inside function bodies: the
analysis package grows runner-backed parallel paths of its own, and
module-level imports in either direction would be circular.
"""

from __future__ import annotations

from fractions import Fraction

from ..chain import (
    CompiledChain,
    Query,
    compile_chain,
    configure_batching,
    configure_disk_cache,
    configure_grouping,
    configure_shared_chains,
    run_group_queries,
    run_queries,
)
from ..core.tasks import SymmetryBreakingTask
from ..obs import (
    LIVE,
    OBS,
    configure_heartbeat,
    configure_tracing,
    drain_telemetry,
    trace,
    tracing_enabled,
)
from ..randomness.configuration import RandomnessConfiguration
from ..sampling import sample_cell, sample_range
from .spec import RunSpec, derive_seed, make_ports, make_task


def exact_limit_value(
    chain: CompiledChain, task: SymmetryBreakingTask
) -> Fraction:
    """The one exact chain evaluation every worker path shares.

    Both the per-job exact runs and the port-chunk folds used to inline
    their own ``ConsistencyChain(...)`` construction; routing them
    through one helper over the batched query layer keeps the
    evaluation semantics (and any future instrumentation) in one place.
    """
    return run_queries(chain, [Query.limit(task)])[0]


def chain_context_payload() -> dict:
    """The parent-side chain-context fields every pool payload carries.

    One choke point for the fields :func:`_apply_chain_context` mirrors
    in the worker (currently the batching and chain-grouping toggles,
    the quotient-compilation mode, and the cost-model policy;
    ``chain_cache`` / ``chain_shm`` / ``chain_shm_groups`` / ``live``
    are sweep-specific and attached by ``run_sweep``).  A payload producer
    that merges this dict can never silently reset a worker to defaults
    the parent has overridden.
    """
    from ..chain import batching_enabled, grouping_enabled, quotient_mode
    from ..obs import policy_payload

    return {
        "batch": batching_enabled(),
        "group_chains": grouping_enabled(),
        "quotient": quotient_mode(),
        "obs": tracing_enabled(),
        # The fitted models ride in the payload itself, so workers need
        # no warehouse access to plan exactly like the parent (the
        # shared-group handshake depends on both sides chunking alike).
        "policy": policy_payload(),
    }


#: Structural chain digests by deterministic job family: the digest is
#: a pure function of ``(sizes, port kind)`` for non-random ports, and
#: hashing the structural key (neighbour tables) per job would otherwise
#: dominate a fully memo-served sweep.
_FAMILY_DIGESTS: dict[tuple, str] = {}


def _memoized_exact_limit(spec: RunSpec, alpha, ports) -> "Fraction | None":
    """The job's exact limit straight from the cross-run memo, or ``None``.

    The memo key needs only the chain's *effective* key -- the
    structural key plus the quotient tag the configured quotient mode
    would compile under, computable from ``(alpha, ports)`` without
    compiling -- so a warm cell skips chain compilation entirely, not
    just the evolution pass.  The token is the very one
    :func:`repro.chain.run_queries` records under (``compile_chain``
    keys the chain by the same effective key), so worker-level hits and
    query-level recording always agree.
    """
    from ..chain import effective_chain_key, quotient_mode
    from ..chain.cache import key_digest
    from ..results.memo import MISS, query_memo, query_token

    memo = query_memo()
    if memo is None:
        return None
    if spec.ports == "random":
        digest = key_digest(effective_chain_key(alpha, ports))
    else:
        # Pool workers outlive sweeps: the quotient mode is part of the
        # family key so a mode flip never serves a stale digest.
        family = (spec.sizes, spec.ports, quotient_mode())
        digest = _FAMILY_DIGESTS.get(family)
        if digest is None:
            digest = key_digest(effective_chain_key(alpha, ports))
            _FAMILY_DIGESTS[family] = digest
    task = make_task(spec.task, alpha.n)
    token = query_token(digest, "limit", task, None, "exact")
    hit = memo.lookup(token)
    return None if hit is MISS else hit


def _apply_chain_context(payload: dict) -> None:
    """Install the payload's chain context -- or uninstall it.

    Workers are separate processes: the process-wide compile memo does
    not cross the pool boundary, but a run-directory disk cache does --
    and a shared-memory manifest (``chain_shm``) lets the worker attach
    chains the parent already compiled without even touching disk.  A
    ``results_memo`` directory (the warehouse's cross-run query memo)
    lets the worker skip whole cells another run already answered.
    Everything is configured *unconditionally*: a payload without a
    cache/manifest/batch flag detaches whatever a previous job in this
    (reused pool or in-process serial) worker installed, so one sweep's
    context never bleeds into the next job's compilations.
    """
    from ..chain import configure_quotient, configure_shared_groups
    from ..obs import configure_policy_payload
    from ..results.memo import configure_query_memo

    configure_disk_cache(payload.get("chain_cache"))
    configure_shared_chains(payload.get("chain_shm"))
    configure_shared_groups(payload.get("chain_shm_groups"))
    configure_batching(payload.get("batch", True))
    configure_grouping(payload.get("group_chains", True))
    configure_quotient(payload.get("quotient", "off"))
    configure_query_memo(payload.get("results_memo"))
    configure_tracing(payload.get("obs", False))
    configure_policy_payload(payload.get("policy"))
    # The live-sweep heartbeat side channel (repro.obs.live): installed
    # per payload like everything above, so a live sweep's emitter never
    # outlives its payloads.  Heartbeats go to their own append logs,
    # never near the record return path.
    configure_heartbeat(payload.get("live"))


def _exact_value(limit: Fraction) -> dict:
    """The value fields of an exact-job record (one shape, every path)."""
    return {
        "limit": str(limit),
        "limit_float": float(limit),
        "solvable": limit == 1,
    }


def _job_record(payload: dict, spec: RunSpec, seed: int, alpha,
                value: dict, elapsed: float) -> dict:
    """One job record; grouped and per-job execution share this shape,
    so the grouped dispatch can never silently drift from serial."""
    return {
        "key": spec.job_key,
        "index": int(payload.get("index", 0)),
        "spec": spec.to_dict(),
        "seed": seed,
        "gcd": alpha.gcd,
        "value": value,
        "elapsed": elapsed,
    }


def execute_run(payload: dict) -> dict:
    """Execute one :class:`~repro.runner.spec.RunSpec` job.

    ``payload`` is ``{"spec": <RunSpec dict>, "master_seed": int,
    "index": int}`` plus an optional ``"chain_cache"`` directory; the
    result record echoes the spec, its key and index (aggregation
    order), the derived seed, and the job's value fields.
    """
    _apply_chain_context(payload)
    spec = RunSpec.from_dict(payload["spec"])
    master_seed = int(payload.get("master_seed", 0))
    seed = derive_seed(master_seed, spec.job_key)
    if LIVE.emitter is not None:
        LIVE.emitter.job_started(f"job:{spec.kind}")
    value: dict
    with trace("runner.job", key=spec.job_key, kind=spec.kind) as timer:
        alpha = RandomnessConfiguration.from_group_sizes(spec.sizes)
        task = make_task(spec.task, alpha.n)
        # Random ports and Monte-Carlo sampling get *disjoint* streams
        # split off the job seed; sharing one seed would correlate the
        # sampled realizations with the randomly drawn port assignment.
        ports = make_ports(spec.ports, spec.sizes,
                           derive_seed(seed, "ports"))
        if spec.kind == "exact":
            limit = _memoized_exact_limit(spec, alpha, ports)
            if limit is None:
                with trace("job.compile"):
                    chain = compile_chain(alpha, ports)
                with trace("job.evolve"):
                    limit = exact_limit_value(chain, task)
            value = _exact_value(limit)
        else:  # sample
            # The substream is keyed by the spec's *stream key* -- the
            # cell axes minus samples/task/t -- so a rerun at a larger
            # budget extends (and memo-merges with) this run's blocks,
            # and cells differing only in task or horizon share trials
            # (common random numbers).  Random ports draw from the same
            # stream-stable root for the same reason: the cell identity
            # must not change when only the budget does.
            stream = derive_seed(master_seed, "mc\x1f" + spec.stream_key)
            if spec.ports == "random":
                ports = make_ports(spec.ports, spec.sizes,
                                   derive_seed(stream, "ports"))
            with trace("job.sample", samples=spec.samples):
                estimate = sample_cell(
                    alpha,
                    task,
                    spec.t,
                    ports,
                    stream_seed=stream,
                    samples=spec.samples,
                )
            value = {
                "estimate": estimate.probability,
                "successes": estimate.successes,
                "samples": estimate.samples,
            }
    record = _job_record(payload, spec, seed, alpha, value, timer.duration)
    if LIVE.emitter is not None:
        LIVE.emitter.job_finished()
    if OBS.enabled:
        OBS.metrics.inc("runner.jobs")
        # Telemetry rides *next to* the record fields under a key the
        # sweep orchestrator pops before persistence -- record bytes
        # stay identical with tracing on or off.
        record["_telemetry"] = drain_telemetry()
    return record


def execute_run_group(payload: dict) -> dict:
    """Execute a whole group of exact jobs in one multi-chain pass.

    ``payload`` is ``{"jobs": [<execute_run payloads>...]}`` plus the
    usual chain-context fields (applied once for the whole group).  The
    sweep dispatcher packs contiguous chain families into these groups
    so a worker pays one payload round trip, one shared-memory attach
    pass, and one grouped query pass for a whole slice of the grid
    instead of one of each per grid point.  The returned record carries
    the member job records, each field-identical to what
    :func:`execute_run` would have produced (``elapsed`` is the group's
    wall clock split evenly -- per-job timing has no meaning inside a
    shared pass).

    With a cross-run query memo configured, jobs whose cell is already
    answered never even compile their chain; only the misses enter the
    grouped pass.  The result additionally carries a ``"group"``
    diagnostics dict -- stacked size/density and the adaptive
    ``evolution_strategy`` verdict, plus the memo hit count -- which the
    sweep orchestrator lands in the warehouse's ``groups`` table for
    perf forensics (deliberately *outside* the job records, whose bytes
    stay engine- and warmth-independent).
    """
    from ..chain import evolution_strategy, transition_density

    _apply_chain_context(payload)
    if LIVE.emitter is not None:
        LIVE.emitter.job_started("group:prepare", count=len(payload["jobs"]))
    with trace("runner.group", jobs=len(payload["jobs"])) as timer:
        prepared = []
        items: dict[int, tuple[CompiledChain, list]] = {}
        order: list[int] = []
        memo_hits = 0
        with trace("group.prepare"):
            for job in payload["jobs"]:
                if LIVE.emitter is not None:
                    LIVE.emitter.pulse()
                spec = RunSpec.from_dict(job["spec"])
                master_seed = int(job.get("master_seed", 0))
                seed = derive_seed(master_seed, spec.job_key)
                alpha = RandomnessConfiguration.from_group_sizes(spec.sizes)
                task = make_task(spec.task, alpha.n)
                ports = make_ports(spec.ports, spec.sizes,
                                   derive_seed(seed, "ports"))
                limit = _memoized_exact_limit(spec, alpha, ports)
                if limit is not None:
                    memo_hits += 1
                    prepared.append((job, spec, seed, alpha, None, limit))
                    continue
                chain = compile_chain(alpha, ports)
                entry = items.get(id(chain))
                if entry is None:
                    entry = items[id(chain)] = (chain, [])
                    order.append(id(chain))
                queries = entry[1]
                prepared.append(
                    (job, spec, seed, alpha, (id(chain), len(queries)), None)
                )
                queries.append(Query.limit(task))
        if LIVE.emitter is not None:
            LIVE.emitter.pulse("group:evolve")
        with trace("group.evolve"):
            answers = dict(
                zip(order, run_group_queries([items[cid] for cid in order]))
            )
    elapsed_total = timer.duration
    elapsed = elapsed_total / max(1, len(prepared))
    with trace("group.serialize"):
        records = [
            _job_record(
                job, spec, seed, alpha,
                _exact_value(
                    limit if handle is None else answers[handle[0]][handle[1]]
                ),
                elapsed,
            )
            for job, spec, seed, alpha, handle, limit in prepared
        ]
    chains = [items[cid][0] for cid in order]
    states = sum(chain.num_states for chain in chains)
    transitions = sum(chain.num_transitions for chain in chains)
    group = {
        "jobs": len(prepared),
        "chains": len(chains),
        "states": states,
        "transitions": transitions,
        "density": transition_density(states, transitions) if states else 0.0,
        "evolution": (
            evolution_strategy(states, transitions) if states else "memo"
        ),
        "memo_hits": memo_hits,
        "elapsed": elapsed_total,
    }
    result = {"records": records, "group": group}
    if LIVE.emitter is not None:
        LIVE.emitter.job_finished(count=len(prepared))
    if OBS.enabled:
        OBS.metrics.inc("runner.groups")
        OBS.metrics.inc("runner.jobs", len(prepared))
        result["telemetry"] = drain_telemetry()
    return result


def execute_experiment(payload: dict) -> dict:
    """Run one registered experiment generator by registry index.

    ``payload`` is ``{"index": int}`` into ``ALL_EXPERIMENTS``; the record
    carries the :class:`~repro.analysis.result.ExperimentResult` *object*
    (pickled across the pool boundary), so row cells keep their native
    types -- ``run_all_experiments`` returns identical results whatever
    the engine.
    """
    from ..analysis import ALL_EXPERIMENTS

    _apply_chain_context(payload)
    index = int(payload["index"])
    with trace("runner.experiment", index=index) as timer:
        result = ALL_EXPERIMENTS[index]()
    record = {
        "index": index,
        "result": result,
        "elapsed": timer.duration,
    }
    if OBS.enabled:
        OBS.metrics.inc("runner.experiments")
        # Telemetry rides next to the live result object; the parent
        # (``iter_all_experiments``) pops and folds it, so experiment
        # results stay identical with tracing on or off.
        record["telemetry"] = drain_telemetry()
    return record


def execute_sample_batch(payload: dict) -> dict:
    """Monte-Carlo-sample one substream range for the parallel estimator.

    ``payload`` carries pickled ``alpha``/``task``/``ports`` objects plus
    ``t``, the stream ``seed``, and the batch's half-open sample range
    ``[start, stop)``.  Integer success counts over disjoint ranges of
    one stream sum exactly to the whole-range count (the kernel's merge
    law), so any partition of the budget across any engine reassembles
    the same estimate.
    """
    _apply_chain_context(payload)
    start = int(payload["start"])
    stop = int(payload["stop"])
    estimate = sample_range(
        payload["alpha"],
        payload["task"],
        int(payload["t"]),
        payload.get("ports"),
        stream_seed=int(payload["seed"]),
        start=start,
        stop=stop,
    )
    return {
        "successes": estimate.successes,
        "samples": estimate.samples,
    }


def execute_port_chunk(payload: dict) -> dict:
    """Fold the exact solvability limit over a chunk of port assignments.

    ``payload`` is ``{"sizes": [...], "task": str, "tables": [...]}``
    where each table is one clique port assignment; the record carries the
    chunk's min/max limit and solvable/total counts for exact re-folding.

    Each assignment in a chunk is visited exactly once, so its chain is
    compiled unmemoized -- keeping thousands of one-shot chains out of
    the process-wide memo.
    """
    from ..models.ports import PortAssignment

    _apply_chain_context(payload)
    sizes = tuple(payload["sizes"])
    alpha = RandomnessConfiguration.from_group_sizes(sizes)
    task = make_task(payload["task"], alpha.n)
    lowest = Fraction(1)
    highest = Fraction(0)
    solvable = 0
    total = 0
    for table in payload["tables"]:
        ports = PortAssignment([list(row) for row in table])
        limit = exact_limit_value(
            compile_chain(alpha, ports, use_memo=False), task
        )
        lowest = min(lowest, limit)
        highest = max(highest, limit)
        solvable += limit == 1
        total += 1
    return {
        "lowest": str(lowest),
        "highest": str(highest),
        "solvable": solvable,
        "total": total,
    }


__all__ = [
    "chain_context_payload",
    "exact_limit_value",
    "execute_experiment",
    "execute_port_chunk",
    "execute_run",
    "execute_run_group",
    "execute_sample_batch",
]
