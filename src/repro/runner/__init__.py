"""repro.runner -- parallel experiment orchestration.

The runner is the package's vertical slice from *spec* to *report*:

* :mod:`repro.runner.spec` -- the declarative sweep grammar
  (:class:`RunSpec`, :class:`SweepSpec`) and the deterministic
  ``(master_seed, job_key)`` seed-derivation scheme;
* :mod:`repro.runner.engines` -- pluggable execution
  (:class:`SerialEngine`, :class:`ProcessPoolEngine`) with one contract:
  results come back in job order, identical for any worker count;
* :mod:`repro.runner.persistence` -- :class:`RunDirectory`, a JSONL
  stream of completed jobs that makes every sweep resumable;
* :mod:`repro.runner.sweep` -- :func:`run_sweep`, which wires the layers
  together and folds records into an
  :class:`~repro.analysis.result.ExperimentResult`;
* :mod:`repro.runner.worker` -- the picklable job executors that run
  inside pool workers.

Quickstart::

    from repro.runner import ProcessPoolEngine, SweepSpec, run_sweep

    sweep = SweepSpec.for_total_size(5, models=("blackboard", "clique"))
    outcome = run_sweep(
        sweep, engine=ProcessPoolEngine(workers=4), run_dir="runs/demo"
    )
    print(outcome.result().render())

See ``RUNNER.md`` at the repository root for the grammar, the seed
scheme, and the run-directory layout.
"""

from .engines import (
    ENGINE_NAMES,
    ExecutionEngine,
    ProcessPoolEngine,
    SerialEngine,
    make_engine,
)
from .persistence import RunDirectory
from .spec import (
    KINDS,
    MODELS,
    PORT_KINDS,
    RunSpec,
    SweepSpec,
    derive_seed,
    make_ports,
    make_task,
    parse_sizes,
)
from .sweep import SweepOutcome, aggregate_records, run_sweep
from .worker import (
    execute_experiment,
    execute_port_chunk,
    execute_run,
    execute_sample_batch,
)

__all__ = [
    "ENGINE_NAMES",
    "KINDS",
    "MODELS",
    "PORT_KINDS",
    "ExecutionEngine",
    "ProcessPoolEngine",
    "RunDirectory",
    "RunSpec",
    "SerialEngine",
    "SweepOutcome",
    "SweepSpec",
    "aggregate_records",
    "derive_seed",
    "execute_experiment",
    "execute_port_chunk",
    "execute_run",
    "execute_sample_batch",
    "make_engine",
    "make_ports",
    "make_task",
    "parse_sizes",
    "run_sweep",
]
