"""Resumable run directories: one JSONL record per completed job.

A run directory's record of truth is two files:

* ``manifest.json`` -- the sweep spec (including master seed) and the
  expanded job-key list, written once when the directory is first used;
* ``records.jsonl`` -- one JSON object per *completed* job, appended and
  flushed as each job finishes.

A live sweep (``--progress``) adds side-channel *metadata* that never
influences records or resume: ``progress.jsonl`` (streaming progress
events) and ``heartbeats/`` (one append-log per worker) -- see
:mod:`repro.obs.live`.  The warehouse ignores both, and ``repro
results vacuum`` deletes them with the directory without requiring
coverage.

Resume is a pure set difference: re-running a sweep against an existing
directory skips every job whose key already appears in the log.  A
half-written trailing line (the signature of a killed process) is
tolerated and simply re-run; a manifest from a *different* sweep is a
hard error, because silently mixing records from two sweeps would
corrupt the aggregate.
"""

from __future__ import annotations

import json
import os
import pathlib


class RunDirectory:
    """A directory of streamed job records with resume bookkeeping."""

    MANIFEST = "manifest.json"
    RECORDS = "records.jsonl"

    def __init__(self, path: "str | pathlib.Path"):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> pathlib.Path:
        """Path of ``manifest.json``."""
        return self.path / self.MANIFEST

    @property
    def records_path(self) -> pathlib.Path:
        """Path of ``records.jsonl``."""
        return self.path / self.RECORDS

    @property
    def progress_path(self) -> pathlib.Path:
        """Path of the live progress event log (``progress.jsonl``)."""
        from ..obs.live import PROGRESS_NAME

        return self.path / PROGRESS_NAME

    @property
    def heartbeat_dir(self) -> pathlib.Path:
        """Directory of per-worker heartbeat logs (``heartbeats/``)."""
        from ..obs.live import HEARTBEAT_DIR

        return self.path / HEARTBEAT_DIR

    def write_manifest(self, manifest: dict) -> None:
        """Write the manifest, or verify it matches the existing one.

        A torn manifest (crash during the initial write) is treated like
        a missing one and rewritten -- same crash-tolerance contract as
        the record log.  The write itself goes through a temp file and
        ``os.replace`` so it is atomic on POSIX.
        """
        if self.manifest_path.exists():
            try:
                existing = json.loads(self.manifest_path.read_text())
            except json.JSONDecodeError:
                existing = None
            if existing is not None:
                if existing != manifest:
                    raise ValueError(
                        f"run directory {self.path} belongs to a different "
                        "sweep (manifest mismatch); use a fresh directory"
                    )
                return
        tmp_path = self.manifest_path.with_suffix(".json.tmp")
        tmp_path.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp_path, self.manifest_path)

    def read_manifest(self) -> dict | None:
        """The stored manifest, or ``None`` before the first write."""
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text())

    def load_records(self) -> list[dict]:
        """All completed-job records, skipping any torn trailing line."""
        if not self.records_path.exists():
            return []
        records: list[dict] = []
        with self.records_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    # A torn line can only be the tail of an interrupted
                    # append; the job re-runs on resume.
                    continue
        return records

    def completed_keys(self) -> set[str]:
        """Job keys already recorded, by key alone.

        Note: ``run_sweep`` does NOT resume from this set directly -- it
        additionally checks each record's derived seed against the
        sweep's master seed, so records copied from a different-seed run
        are re-executed.  Use this only where key identity suffices.
        """
        return {
            record["key"]
            for record in self.load_records()
            if "key" in record
        }

    def append(self, record: dict) -> None:
        """Append one record and flush; appended records survive a crash."""
        with self.records_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            handle.flush()


__all__ = ["RunDirectory"]
