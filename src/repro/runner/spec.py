"""Declarative sweep grammar: jobs as data, expansion as a pure function.

A :class:`RunSpec` names one experiment configuration with nothing but
primitive values (a size shape, a model, a port-assignment kind, a task
spec string, a replicate index).  A :class:`SweepSpec` is the cartesian
grammar over those axes; :meth:`SweepSpec.expand` turns it into the
deterministic, duplicate-free job list that the execution engines consume.

Keeping specs primitive has two payoffs: every job pickles trivially into
a worker process, and every job has a canonical :attr:`RunSpec.job_key`
string that doubles as (a) the resume key in a run directory's JSONL log
and (b) the label from which the job's private random stream is derived
(:func:`derive_seed`).  Because the seed depends only on ``(master_seed,
job_key)`` -- never on scheduling order or worker count -- a sweep's
results are identical under any engine.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, fields
from functools import lru_cache

from ..core import (
    k_leader_election,
    leader_and_deputy,
    leader_election,
    partition_into_teams,
    threshold_election,
    unique_ids,
    weak_symmetry_breaking,
)
from ..core.tasks import SymmetryBreakingTask
from ..models import (
    PortAssignment,
    adversarial_assignment,
    random_assignment,
    round_robin_assignment,
)
from ..randomness import enumerate_size_shapes

#: Communication models a job may target.
MODELS = ("blackboard", "clique")
#: Port-assignment kinds for the clique model ("none" marks blackboard
#: jobs, where ports are meaningless and normalized away).
PORT_KINDS = ("adversarial", "round-robin", "random", "none")
#: What a job computes: the exact eventual-solvability limit, or a
#: Monte-Carlo estimate of ``Pr[S(t)]`` at a finite horizon.
KINDS = ("exact", "sample")


def parse_sizes(text: str) -> tuple[int, ...]:
    """Parse a size shape like ``'2,3'`` into ``(2, 3)``."""
    try:
        sizes = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise ValueError(f"sizes must look like '2,3', got {text!r}")
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"sizes must be positive: {text!r}")
    return sizes


@lru_cache(maxsize=256)
def make_task(spec: str, n: int) -> SymmetryBreakingTask:
    """Build a task from a spec string: ``leader``, ``k-leader:2``,
    ``weak-sb``, ``unique-ids``, ``deputy``, ``threshold:LO,HI``, or
    ``teams:S1,S2,...``.

    Cached: spec validation (``RunSpec.__post_init__``) and job
    execution construct the same task, so repeated builds within a
    process are free.  Tasks are treated as immutable everywhere.
    """
    name, _, arg = spec.partition(":")
    if name == "leader":
        return leader_election(n)
    if name == "k-leader":
        return k_leader_election(n, int(arg))
    if name == "weak-sb":
        return weak_symmetry_breaking(n)
    if name == "unique-ids":
        return unique_ids(n)
    if name == "deputy":
        return leader_and_deputy(n)
    if name == "threshold":
        low, high = (int(x) for x in arg.split(","))
        return threshold_election(n, low, high)
    if name == "teams":
        return partition_into_teams(parse_sizes(arg))
    raise ValueError(f"unknown task {spec!r}")


def make_ports(
    kind: str, sizes: tuple[int, ...], seed: int
) -> PortAssignment | None:
    """Build a port assignment from its kind (``None`` for ``'none'``)."""
    if kind == "none":
        return None
    if kind == "adversarial":
        return adversarial_assignment(sizes)
    if kind == "round-robin":
        return round_robin_assignment(sum(sizes))
    if kind == "random":
        return random_assignment(sum(sizes), seed)
    raise ValueError(f"unknown ports {kind!r}")


def derive_seed(master_seed: int, key: str) -> int:
    """Derive a job's private 63-bit seed from the master seed and its key.

    SHA-256 rather than the builtin ``hash`` because the latter is salted
    per process (``PYTHONHASHSEED``), which would silently break the
    cross-worker determinism guarantee the runner is built around.
    """
    digest = hashlib.sha256(
        f"{master_seed}\x1f{key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class RunSpec:
    """One job: a fully primitive, picklable experiment configuration.

    ``kind='exact'`` computes the exact limit of ``Pr[S(t)]`` via the
    consistency chain; ``kind='sample'`` Monte-Carlo-estimates ``Pr[S(t)]``
    at horizon :attr:`t` with :attr:`samples` samples.  :attr:`replicate`
    distinguishes otherwise-identical jobs so a sweep can run independent
    random repetitions (each gets its own derived seed stream); it is
    normalized to 0 for jobs that consume no randomness (``exact`` kind
    with non-random ports), which would repeat identically.
    """

    sizes: tuple[int, ...]
    model: str = "blackboard"
    ports: str = "adversarial"
    task: str = "leader"
    kind: str = "exact"
    t: int = 4
    samples: int = 2000
    replicate: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        if not self.sizes or any(s < 1 for s in self.sizes):
            raise ValueError(f"sizes must be positive: {self.sizes!r}")
        if self.model not in MODELS:
            raise ValueError(f"unknown model {self.model!r}")
        if self.ports not in PORT_KINDS:
            raise ValueError(f"unknown ports {self.ports!r}")
        # Ports are meaningless on the blackboard; normalize (after
        # validating the caller's value) so blackboard jobs collapse to
        # one key regardless of the sweep's ports axis.
        if self.model == "blackboard":
            object.__setattr__(self, "ports", "none")
        if self.model == "clique" and self.ports == "none":
            raise ValueError("clique jobs need a real port kind")
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}")
        if self.t < 1:
            raise ValueError("t must be >= 1")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        # Replicates only matter when the job consumes randomness
        # (sampling, or randomly drawn ports); deterministic jobs
        # collapse to replicate 0 so a sweep's replicates axis never
        # re-runs identical exact computations.
        if self.kind == "exact" and self.ports != "random":
            object.__setattr__(self, "replicate", 0)
        # Fail on a bad task spec at construction time, not mid-sweep
        # inside a worker process.
        make_task(self.task, self.n)

    @property
    def n(self) -> int:
        """Total number of nodes (sum of the group sizes)."""
        return sum(self.sizes)

    @property
    def job_key(self) -> str:
        """Canonical key: resume identity and seed-derivation label."""
        parts = [
            "sizes=" + ",".join(str(s) for s in self.sizes),
            f"model={self.model}",
            f"ports={self.ports}",
            f"task={self.task}",
            f"kind={self.kind}",
        ]
        if self.kind == "sample":
            parts.append(f"t={self.t}")
            parts.append(f"samples={self.samples}")
        parts.append(f"rep={self.replicate}")
        return ";".join(parts)

    @property
    def stream_key(self) -> str:
        """Sampling-substream identity (``kind='sample'`` jobs).

        Deliberately *narrower* than :attr:`job_key`: it names only the
        axes that select a cell's randomness -- the configuration, the
        model, the port kind, and the replicate.  Excluding ``samples``
        lets a larger budget extend the same substream (the memo's merge
        law); excluding ``task`` and ``t`` gives cells that differ only
        along those axes common random numbers, so paired comparisons
        across them are low-variance.
        """
        return ";".join(
            [
                "sizes=" + ",".join(str(s) for s in self.sizes),
                f"model={self.model}",
                f"ports={self.ports}",
                f"rep={self.replicate}",
            ]
        )

    def to_dict(self) -> dict:
        """JSON-safe dictionary form (inverse of :meth:`from_dict`)."""
        return {
            "sizes": list(self.sizes),
            "model": self.model,
            "ports": self.ports,
            "task": self.task,
            "kind": self.kind,
            "t": self.t,
            "samples": self.samples,
            "replicate": self.replicate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        names = {f.name for f in fields(cls)}
        unknown = payload.keys() - names
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        data = dict(payload)
        data["sizes"] = tuple(data["sizes"])
        return cls(**data)


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian sweep: shapes x models x ports x tasks x replicates.

    :meth:`expand` yields the job list in a fixed nesting order (shapes
    outermost, replicates innermost) and drops duplicate keys -- e.g. a
    blackboard job repeated across the ports axis.  :attr:`master_seed`
    is the single root of randomness for the whole sweep; each job reseeds
    from it via :func:`derive_seed` on its key.
    """

    shapes: tuple[tuple[int, ...], ...]
    models: tuple[str, ...] = ("blackboard",)
    ports: tuple[str, ...] = ("adversarial",)
    tasks: tuple[str, ...] = ("leader",)
    kind: str = "exact"
    t: int = 4
    samples: int = 2000
    replicates: tuple[int, ...] = (0,)
    master_seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "shapes", tuple(tuple(int(s) for s in sh) for sh in self.shapes)
        )
        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(self, "ports", tuple(self.ports))
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(
            self, "replicates", tuple(int(r) for r in self.replicates)
        )
        if not self.shapes:
            raise ValueError("sweep needs at least one shape")
        for axis, valid in (
            (self.models, MODELS),
            (self.ports, PORT_KINDS),
        ):
            if not axis:
                raise ValueError("sweep axes must be non-empty")
            for value in axis:
                if value not in valid:
                    raise ValueError(f"unknown axis value {value!r}")
        if not self.tasks or not self.replicates:
            raise ValueError("sweep axes must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}")

    @classmethod
    def for_total_size(cls, n: int, **kwargs) -> "SweepSpec":
        """A sweep over every size shape of ``n`` (phase-diagram style)."""
        return cls(shapes=tuple(enumerate_size_shapes(n)), **kwargs)

    def expand(self) -> tuple[RunSpec, ...]:
        """The deterministic, duplicate-free job list for this sweep."""
        jobs: list[RunSpec] = []
        seen: set[str] = set()
        for shape, model, ports, task, rep in itertools.product(
            self.shapes, self.models, self.ports, self.tasks, self.replicates
        ):
            if model == "clique" and ports == "none":
                continue
            spec = RunSpec(
                sizes=shape,
                model=model,
                ports=ports,
                task=task,
                kind=self.kind,
                t=self.t,
                samples=self.samples,
                replicate=rep,
            )
            if spec.job_key in seen:
                continue
            seen.add(spec.job_key)
            jobs.append(spec)
        return tuple(jobs)

    def to_dict(self) -> dict:
        """JSON-safe dictionary form (stored in run-directory manifests)."""
        return {
            "shapes": [list(sh) for sh in self.shapes],
            "models": list(self.models),
            "ports": list(self.ports),
            "tasks": list(self.tasks),
            "kind": self.kind,
            "t": self.t,
            "samples": self.samples,
            "replicates": list(self.replicates),
            "master_seed": self.master_seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_dict` output."""
        names = {f.name for f in fields(cls)}
        unknown = payload.keys() - names
        if unknown:
            raise ValueError(f"unknown SweepSpec fields: {sorted(unknown)}")
        data = dict(payload)
        data["shapes"] = tuple(tuple(sh) for sh in data["shapes"])
        for axis in ("models", "ports", "tasks", "replicates"):
            if axis in data:
                data[axis] = tuple(data[axis])
        return cls(**data)


__all__ = [
    "KINDS",
    "MODELS",
    "PORT_KINDS",
    "RunSpec",
    "SweepSpec",
    "derive_seed",
    "make_ports",
    "make_task",
    "parse_sizes",
]
