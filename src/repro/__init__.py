"""repro -- reproduction of "The Topology of Randomized Symmetry-Breaking
Distributed Computing" (Fraigniaud, Gelles, Lotker; PODC 2021).

The package implements the paper's topological framework for randomized
algorithms in synchronous anonymous systems, end to end:

* :mod:`repro.topology` -- simplicial complexes, simplicial maps, homology;
* :mod:`repro.randomness` -- randomness sources, configurations ``alpha``,
  realization probabilities (Lemma B.1);
* :mod:`repro.models` -- blackboard and port-numbered message passing,
  knowledge evolution, the Lemma 4.3 adversarial port assignment;
* :mod:`repro.core` -- protocol/realization complexes, consistency
  projections, solvability (Definitions 3.1/3.4), exact ``Pr[S(t)|alpha]``
  and its 0/1 limits, Theorems 4.1/4.2 and generalizations;
* :mod:`repro.chain` -- the compiled consistency-chain engine behind
  :class:`~repro.core.markov.ConsistencyChain`: interned states, sparse
  transition matrices, dual exact/float backends, process-wide memo and
  optional on-disk cache (see ``CHAIN.md``);
* :mod:`repro.algorithms` -- runnable protocols: blackboard leader
  election, Algorithm 1 (CreateMatching), the Euclid-style leader election,
  and the Theorem C.1 reduction;
* :mod:`repro.analysis` -- the experiment harness regenerating every figure
  and theorem of the paper;
* :mod:`repro.runner` -- parallel experiment orchestration: declarative
  sweeps, serial/process-pool engines with deterministic per-job seed
  streams, and resumable JSONL run directories;
* :mod:`repro.results` -- the columnar results warehouse and cross-run
  query memo serving reports and repeated sweeps (see ``STORE.md``);
* :mod:`repro.obs` -- span tracing and metrics across the chain/runner/
  warehouse stack, persisted and queryable (see ``OBS.md``);
* :mod:`repro.viz` -- ASCII/DOT rendering of the paper's figures.

Quickstart::

    from repro import RandomnessConfiguration, leader_election
    from repro.core import ConsistencyChain

    alpha = RandomnessConfiguration.from_group_sizes([2, 3])
    chain = ConsistencyChain(alpha)          # blackboard model
    task = leader_election(alpha.n)
    chain.eventually_solvable(task)          # False: no n_i == 1 (Thm 4.1)
"""

from .chain import CompiledChain, compile_chain
from .core import (
    ConsistencyChain,
    CountTask,
    OutputComplexTask,
    SymmetryBreakingTask,
    blackboard_solvable,
    eventually_solvable,
    k_leader_election,
    leader_election,
    message_passing_worst_case_solvable,
    solving_probability_exact,
    solving_probability_series,
    weak_symmetry_breaking,
)
from .models import (
    BlackboardModel,
    MessagePassingModel,
    PortAssignment,
    adversarial_assignment,
    random_assignment,
    round_robin_assignment,
)
from .randomness import RandomnessConfiguration, enumerate_size_shapes
from .runner import (
    ProcessPoolEngine,
    RunDirectory,
    RunSpec,
    SerialEngine,
    SweepSpec,
    derive_seed,
    make_engine,
    run_sweep,
)
from .topology import Simplex, SimplicialComplex, Vertex

__version__ = "1.0.0"

__all__ = [
    "BlackboardModel",
    "CompiledChain",
    "ConsistencyChain",
    "CountTask",
    "MessagePassingModel",
    "OutputComplexTask",
    "PortAssignment",
    "ProcessPoolEngine",
    "RandomnessConfiguration",
    "RunDirectory",
    "RunSpec",
    "SerialEngine",
    "Simplex",
    "SimplicialComplex",
    "SweepSpec",
    "SymmetryBreakingTask",
    "Vertex",
    "adversarial_assignment",
    "blackboard_solvable",
    "compile_chain",
    "derive_seed",
    "enumerate_size_shapes",
    "eventually_solvable",
    "k_leader_election",
    "leader_election",
    "make_engine",
    "message_passing_worst_case_solvable",
    "random_assignment",
    "round_robin_assignment",
    "run_sweep",
    "solving_probability_exact",
    "solving_probability_series",
    "weak_symmetry_breaking",
    "__version__",
]
