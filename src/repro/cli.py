"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
solve           decide eventual solvability for a configuration and task
series          exact Pr[S(t)] for t = 1..T
expected-time   exact expected rounds until the task is solved
phase-diagram   sweep all size shapes of n (both models)
protocol        run an actual election protocol and report the outcome
figures         render the paper's Figures 1-3 as text
experiments     run reproduction experiments (all or by id)
run             execute one runner job and print its JSON record
estimate        Monte-Carlo Pr[S(t)] estimate (mergeable memoized substreams)
sweep           expand and execute a sweep (parallel, resumable)
chains          list/inspect/prune a chain disk cache; calibrate cost models
results         query/export/stats/compact/ingest/vacuum a results warehouse
metrics         show/export collected telemetry; cross-run history (OBS.md)
obs             cross-run analytics: diff two sweeps, per-tier attribution
trace           prefix: run any command traced and print its span tree

Chain queries default to the batched query layer (``repro.chain.batch``:
one shared pass answers a whole set of (task, horizon) questions);
``--no-batch`` on the query-heavy commands falls back to scalar
per-query passes with byte-identical exact results.  Sweep-wide queries
additionally default to the block-diagonal multi-chain group engine
(``repro.chain.multi``: one stacked pass answers a whole shape axis);
``--no-group-chains`` falls back to per-chain passes, again with
byte-identical exact results.  Chains themselves compile **quotiented**
by the configuration's automorphism group when it has one
(``repro.chain.quotient``: orbit states instead of raw partitions);
``--no-quotient`` forces full chains and ``--quotient`` insists, with
byte-identical exact start-state results either way.

Examples
--------
python -m repro solve 2,3 --model clique
python -m repro series 1,2,2 --t-max 8
python -m repro solve 2,4 --model clique --task k-leader:2
python -m repro phase-diagram 5
python -m repro protocol 2,3 --model clique --seed 7
python -m repro experiments theorem-4.1 theorem-4.2

Running sweeps
--------------
The ``run`` and ``sweep`` commands front the :mod:`repro.runner`
subsystem (see ``RUNNER.md``).  A sweep is the cartesian product of its
axes -- ``--shapes`` (or ``--n`` for every shape of a total size),
``--models``, ``--ports``, ``--tasks``, and ``--replicates`` -- expanded
into a deterministic job list.  ``--engine process --workers W`` fans
jobs out over a process pool; because each job's seed derives from
``(master seed, job key)``, the results are identical to ``--engine
serial``.  ``--run-dir DIR`` streams one JSONL record per completed job
and makes the sweep resumable: re-running against the same directory
executes only the jobs not yet recorded.

python -m repro run 2,3 --model clique --task leader
python -m repro sweep --n 5 --models blackboard clique
python -m repro sweep --shapes 2,3 1,2,2 --kind sample --t 4 \\
    --engine process --workers 4 --run-dir runs/demo

``phase-diagram``, ``experiments``, and ``report`` accept the same
``--engine``/``--workers`` flags and route through the runner, so the
existing commands parallelize for free (``--engine serial`` remains the
default and reproduces the historical behaviour exactly).

The results warehouse
---------------------
Sweeps with a ``--run-dir`` feed a columnar results warehouse
(``repro.results``, default ``<run_dir>/warehouse``, override with
``--warehouse``): completed records ingest incrementally into typed
numpy column pages, and the warehouse's cross-run query memo lets any
later sweep -- same run dir or not -- skip every (chain, task, horizon,
quantity) cell it has already answered, byte-identically.  Monte-Carlo
cells participate too: sampled sweeps and ``repro estimate`` memoize
integer success counts per fixed substream block, so warm reruns serve
whole cells from the memo and a larger sample budget computes only the
increment, merged with the stored blocks into one combined estimate
(``RUNNER.md``, "Monte-Carlo substreams and the merge law").  ``repro
results`` serves the stored tables:

python -m repro results stats runs/demo
python -m repro results query runs/demo --where model=clique \\
    --group-by task --agg count --agg mean:elapsed
python -m repro results export runs/demo --format csv -o records.csv
python -m repro results compact runs/demo

See ``STORE.md`` for the on-disk layout and the memo key scheme.

Observability
-------------
``repro trace <command ...>`` runs any command with span tracing on and
prints a span tree (calls, total, self time) when it finishes;
``--trace`` is the flag spelling of the same thing.  ``--profile-out
FILE`` on ``sweep``/``phase-diagram``/``report`` writes the full JSON
profile (spans, metrics, aggregates; validate it with ``python -m
repro.obs.schema FILE``).  ``repro metrics show`` prints the collected
counters/gauges/histograms (histograms with p50/p90/p99 summaries);
sweeps with a warehouse persist the same rows into a ``telemetry``
table served by ``repro results query --table telemetry``.  Across
runs, ``repro metrics history`` trends those rows, ``repro obs
diff``/``tiers`` compare sweeps and attribute wall-clock, ``repro
chains calibrate`` fits cost models from the measured ``groups``
forensics, and ``--policy measured`` lets the planner select execution
strategies from those models (results byte-identical under every
policy).  See ``OBS.md`` for the instrumentation map and "From
telemetry to decisions".
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .chain import BACKENDS
from .core import ConsistencyChain
from .core.tasks import SymmetryBreakingTask
from .models import PortAssignment
from .randomness import RandomnessConfiguration, enumerate_size_shapes
from .runner import spec as runner_spec
from .runner.engines import ENGINE_NAMES, ExecutionEngine, make_engine
from .viz import format_table


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        return runner_spec.parse_sizes(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _make_task(spec: str, n: int) -> SymmetryBreakingTask:
    """Parse a task spec like ``leader``, ``k-leader:2``, ``teams:2,3``."""
    try:
        return runner_spec.make_task(spec, n)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _make_ports(
    kind: str, sizes: tuple[int, ...], seed: int
) -> PortAssignment:
    try:
        ports = runner_spec.make_ports(kind, sizes, seed)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    if ports is None:
        raise argparse.ArgumentTypeError(f"unknown ports {kind!r}")
    return ports


def _add_engine_args(p) -> None:
    p.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="serial",
        help="execution engine (default: serial)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --engine process (default: cpu count)",
    )


#: Port kinds a user can ask for ("none" is the internal blackboard marker).
_CLI_PORT_KINDS = tuple(k for k in runner_spec.PORT_KINDS if k != "none")


def _engine_from(args) -> ExecutionEngine:
    try:
        return make_engine(args.engine, workers=args.workers)
    except ValueError as exc:
        raise SystemExit(f"{args.command}: {exc}")


def _chain(args) -> tuple[RandomnessConfiguration, ConsistencyChain]:
    alpha = RandomnessConfiguration.from_group_sizes(args.sizes)
    backend = getattr(args, "backend", "exact")
    if args.model == "blackboard":
        return alpha, ConsistencyChain(alpha, backend=backend)
    ports = _make_ports(args.ports, args.sizes, args.seed)
    return alpha, ConsistencyChain(alpha, ports, backend=backend)


def _add_backend_arg(p) -> None:
    p.add_argument(
        "--backend",
        choices=BACKENDS,
        default="exact",
        help=(
            "chain arithmetic: exact Fractions (default) or numpy "
            "float64 (large state spaces / long horizons)"
        ),
    )


def _add_batch_arg(p) -> None:
    p.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "answer chain queries through the batched query layer "
            "(default; --no-batch falls back to scalar per-query passes "
            "-- exact results are byte-identical either way)"
        ),
    )


def _add_warehouse_args(p) -> None:
    p.add_argument(
        "--warehouse",
        default=None,
        help=(
            "columnar results warehouse to serve and feed (default: "
            "<run-dir>/warehouse when --run-dir is given; point several "
            "sweeps at one directory to share the cross-run query memo)"
        ),
    )
    p.add_argument(
        "--no-warehouse",
        action="store_true",
        help="disable warehouse ingestion and the cross-run query memo",
    )


def _warehouse_from(args):
    """The ``warehouse`` argument for ``run_sweep`` (False = opted out)."""
    if getattr(args, "no_warehouse", False):
        return False
    return getattr(args, "warehouse", None)


def _add_profile_arg(p) -> None:
    p.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help=(
            "write a JSON telemetry profile (spans, metrics, aggregates) "
            "here when the command finishes; implies tracing.  Validate "
            "with `python -m repro.obs.schema FILE`"
        ),
    )


def _add_group_arg(p) -> None:
    p.add_argument(
        "--group-chains",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "answer sweep-wide queries through the block-diagonal "
            "multi-chain group engine (default; stacked passes under "
            "the float backend, shared per-chain planning under exact "
            "-- --no-group-chains falls back to per-chain passes with "
            "byte-identical exact results)"
        ),
    )


def _add_quotient_arg(p) -> None:
    p.add_argument(
        "--quotient",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "compile chains modulo the configuration's automorphism "
            "group (orbit states; default: auto -- quotient whenever "
            "the group is nontrivial.  --no-quotient forces full "
            "chains; exact start-state results are byte-identical "
            "either way)"
        ),
    )


def _add_policy_arg(p) -> None:
    p.add_argument(
        "--policy",
        choices=("static", "measured"),
        default=None,
        help=(
            "execution-strategy policy: static heuristics (default) or "
            "cost models fitted by `repro chains calibrate` and loaded "
            "from the warehouse.  A measured policy only re-ranks "
            "strategies (dense-vs-scatter, group chunk budgets) -- "
            "results are byte-identical under either policy; missing "
            "models fall back to the static heuristics deterministically"
        ),
    )


def _configure_policy_from(args) -> None:
    """Install the ``--policy`` choice (and its models) process-wide.

    ``measured`` loads the latest fitted models from the warehouse the
    command is already pointed at (``--warehouse``, or the run
    directory's warehouse).  A measured policy without a reachable
    ``models`` table is installed empty -- every decision then falls
    back to the static heuristics, deterministically -- with a note on
    stderr so the opt-in isn't silently inert.
    """
    import pathlib

    from .obs import configure_policy

    mode = getattr(args, "policy", None) or "static"
    models = {}
    if mode == "measured":
        source = _warehouse_from(args) or None
        if not source and getattr(args, "run_dir", None):
            source = str(pathlib.Path(args.run_dir) / "warehouse")
        if source:
            root = pathlib.Path(source)
            if (root / "warehouse").is_dir():
                root = root / "warehouse"
            if (root / "segments").is_dir():
                from .obs.calibrate import load_cost_models
                from .results import ResultsStore

                models = load_cost_models(ResultsStore(root))
        if not models:
            print(
                "policy: measured requested but no fitted models found "
                "(run `repro chains calibrate` on a traced sweep's "
                "warehouse); static heuristics in effect",
                file=sys.stderr,
            )
    configure_policy(mode, models)


def _add_progress_args(p) -> None:
    """Install ``--progress`` and the stall-watchdog knobs."""
    p.add_argument(
        "--progress",
        action="store_true",
        help=(
            "stream per-job progress to stderr; with a run directory, "
            "also write progress.jsonl and per-worker heartbeats there "
            "(tail with `repro obs tail RUN_DIR`)"
        ),
    )
    p.add_argument(
        "--stall-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "--progress: flag a worker whose last heartbeat is older "
            "than this (default 30)"
        ),
    )
    p.add_argument(
        "--stall-action",
        choices=("warn", "cancel"),
        default="warn",
        help=(
            "--progress: what the stall watchdog does -- warn on "
            "stderr, or cancel the pool and resubmit the unfinished "
            "jobs (default warn)"
        ),
    )


def _live_from(args) -> "dict | None":
    """The ``run_sweep(live=...)`` payload for ``--progress``, or None."""
    if not getattr(args, "progress", False):
        return None
    return {
        "deadline": args.stall_deadline,
        "action": args.stall_action,
    }


def _stderr_progress(total: int):
    """A per-record callback printing ``done/total`` lines to stderr."""
    done = 0

    def advance(record: dict) -> None:
        nonlocal done
        done += 1
        key = record.get("key", "?")
        print(f"progress: {done}/{total} {key}", file=sys.stderr)

    return advance


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_solve(args) -> int:
    from .chain import Query, run_queries

    alpha, chain = _chain(args)
    task = _make_task(args.task, alpha.n)
    limit = run_queries(
        chain.compiled, [Query.limit(task)], backend=chain.backend
    )[0]
    print(
        f"configuration: sizes {alpha.group_sizes} (n={alpha.n}, "
        f"k={alpha.k}, gcd={alpha.gcd})"
    )
    print(f"backend: {chain.backend}")
    print(f"model: {args.model}" + (
        f" ({args.ports} ports)" if args.model == "clique" else ""
    ))
    print(f"task: {task}")
    print(f"limit of Pr[S(t)]: {limit}")
    # The exact backend yields a true 0/1 Fraction; the float backend can
    # land within rounding error of 1.
    solvable = limit == 1 if chain.backend == "exact" else limit > 1 - 1e-9
    print("eventually solvable:", "YES" if solvable else "NO")
    return 0


def cmd_series(args) -> int:
    from .chain import Query, run_queries

    alpha, chain = _chain(args)
    task = _make_task(args.task, alpha.n)
    series = run_queries(
        chain.compiled, [Query.series(task, args.t_max)],
        backend=chain.backend,
    )[0]
    rows = [
        (t, str(p), f"{float(p):.6f}")
        for t, p in enumerate(series, start=1)
    ]
    label = "exact" if chain.backend == "exact" else "float64"
    print(format_table(("t", f"Pr[S(t)] {label}", "~"), rows))
    return 0


def cmd_expected_time(args) -> int:
    from .chain import Query, run_queries

    alpha, chain = _chain(args)
    task = _make_task(args.task, alpha.n)
    expected = run_queries(
        chain.compiled, [Query.expected_time(task)], backend=chain.backend
    )[0]
    if expected is None:
        print("expected time: infinite (task not eventually solvable)")
    else:
        print(f"expected rounds to a solving state: {expected} "
              f"(~{float(expected):.4f})")
    return 0


def cmd_phase_diagram(args) -> int:
    from .runner import SweepSpec, run_sweep

    try:
        sweep = SweepSpec.for_total_size(
            args.n,
            models=("blackboard", "clique"),
            ports=("adversarial",),
            tasks=(args.task,),
        )
        progress = (
            _stderr_progress(len(sweep.expand())) if args.progress else None
        )
        outcome = run_sweep(
            sweep,
            engine=_engine_from(args),
            run_dir=args.run_dir,
            warehouse=_warehouse_from(args),
            progress=progress,
            live=_live_from(args),
        )
    except ValueError as exc:  # e.g. a bad --task spec
        raise SystemExit(f"phase-diagram: {exc}")
    # Jobs expand blackboard-then-clique per shape; zip the pairs back
    # into the historical two-column table.
    by_shape: dict[tuple[int, ...], dict[str, bool]] = {}
    gcds: dict[tuple[int, ...], int] = {}
    for record in outcome.records:
        shape = tuple(record["spec"]["sizes"])
        by_shape.setdefault(shape, {})[record["spec"]["model"]] = record[
            "value"
        ]["solvable"]
        gcds[shape] = record["gcd"]
    rows = [
        (
            shape,
            gcds[shape],
            "yes" if verdicts["blackboard"] else "no",
            "yes" if verdicts["clique"] else "no",
        )
        for shape, verdicts in by_shape.items()
    ]
    print(
        format_table(
            ("sizes", "gcd", "blackboard", "clique (worst case)"), rows
        )
    )
    return 0


def cmd_protocol(args) -> int:
    from .algorithms import (
        BlackboardLeaderNode,
        BlackboardNetwork,
        CliqueNetwork,
        EuclidLeaderNode,
    )

    alpha = RandomnessConfiguration.from_group_sizes(args.sizes)
    if args.model == "blackboard":
        network = BlackboardNetwork(
            alpha, lambda: BlackboardLeaderNode(k=args.k), seed=args.seed
        )
    else:
        ports = _make_ports(args.ports, args.sizes, args.seed)
        network = CliqueNetwork(
            alpha, ports, lambda: EuclidLeaderNode(k=args.k), seed=args.seed
        )
    result = network.run(max_rounds=args.max_rounds)
    if result.all_decided:
        print(
            f"elected {result.leaders()} in {result.rounds} rounds "
            f"(k={args.k})"
        )
        return 0
    print(f"no election within {args.max_rounds} rounds")
    return 1


def cmd_figures(args) -> int:
    from .core import (
        build_protocol_complex,
        leader_election_complex,
        project_complex,
        realization_complex,
    )
    from .models import BlackboardModel
    from .viz import render_complex

    print("Figure 1 -- P(t), n=2, blackboard")
    for t in range(2):
        build = build_protocol_complex(BlackboardModel(2), t)
        print(render_complex(build.complex, title=f"P({t}):"))
    print("\nFigure 2 -- R(1), n=3")
    print(render_complex(realization_complex(3, 1)))
    print("\nFigure 3 -- O_LE and pi(O_LE), n=3")
    o_le = leader_election_complex(3)
    print(render_complex(o_le, title="O_LE:"))
    print(render_complex(project_complex(o_le), title="pi(O_LE):"))
    return 0


def cmd_graphs(args) -> int:
    """Worst-case deterministic leader election on a graph family."""
    from .core import (
        color_refinement_fixpoint,
        leader_election,
        worst_case_deterministic_solvable,
    )
    from .models import GraphTopology
    from .viz import render_partition

    name, _, arg = args.graph.partition(":")
    if name == "ring":
        topology = GraphTopology.ring(int(arg))
    elif name == "path":
        topology = GraphTopology.path(int(arg))
    elif name == "star":
        topology = GraphTopology.star(int(arg))
    elif name == "clique":
        topology = GraphTopology.complete(int(arg))
    elif name == "bipartite":
        m, n = (int(x) for x in arg.split(","))
        topology = GraphTopology.complete_bipartite(m, n)
    else:
        raise SystemExit(f"unknown graph {args.graph!r}")
    n = topology.n
    fixpoint = color_refinement_fixpoint(topology)
    print(f"graph: {args.graph} (n={n}, labelings={topology.labeling_count()})")
    print(
        "color-refinement fixpoint (canonical labeling):",
        render_partition([frozenset(b) for b in fixpoint]),
    )
    if topology.labeling_count() > args.labeling_limit:
        print(
            f"worst case skipped: {topology.labeling_count()} labelings "
            f"exceed --labeling-limit {args.labeling_limit}"
        )
        return 0
    verdict = worst_case_deterministic_solvable(
        topology, leader_election(n), limit=args.labeling_limit
    )
    print(
        "worst-case deterministic leader election:",
        "YES" if verdict else "NO",
    )
    return 0


def cmd_chains(args) -> int:
    """List, inspect, prune a chain disk cache -- or calibrate models."""
    import datetime
    import pathlib
    import pickle

    from .chain import ChainDiskCache

    if args.action == "calibrate":
        return _cmd_chains_calibrate(args)
    root = pathlib.Path(args.directory)
    # Accept a run directory transparently: sweeps persist their chains
    # under <run_dir>/chains.
    if (root / "chains").is_dir():
        root = root / "chains"
    if not root.is_dir():
        raise SystemExit(f"chains: no cache directory at {args.directory}")
    cache = ChainDiskCache(root)
    entries = cache.entries()
    if args.action == "prune":
        if args.all:
            removed = cache.evict(max_bytes=0, max_entries=0)
        elif args.max_bytes is None and args.max_entries is None:
            raise SystemExit(
                "chains prune: need --max-bytes, --max-entries, or --all"
            )
        else:
            try:
                removed = cache.evict(
                    max_bytes=args.max_bytes, max_entries=args.max_entries
                )
            except ValueError as exc:
                raise SystemExit(f"chains prune: {exc}")
        freed = sum(entry.size for entry in removed)
        print(
            f"pruned {len(removed)}/{len(entries)} cached chains "
            f"({freed} bytes freed) from {root}"
        )
        return 0
    if not entries:
        print(f"{root}: empty chain cache")
        return 0
    rows = []
    for entry in entries:
        stamp = datetime.datetime.fromtimestamp(entry.mtime).isoformat(
            sep=" ", timespec="seconds"
        )
        if args.action == "inspect":
            try:
                with entry.path.open("rb") as handle:
                    chain = pickle.load(handle)
                model = "blackboard" if chain.key[1] is None else (
                    "classical" if chain.key[2] is not None else "clique"
                )
                detail = (
                    f"n={chain.n} k={chain.k} states={chain.num_states} "
                    f"transitions={chain.num_transitions} {model}"
                )
            except Exception as exc:
                detail = f"unreadable ({type(exc).__name__})"
            rows.append(
                (entry.digest[:12], entry.size, entry.loads, stamp, detail)
            )
        else:
            rows.append((entry.digest[:12], entry.size, entry.loads, stamp))
    headers = (
        ("digest", "bytes", "loads", "last used", "chain")
        if args.action == "inspect"
        else ("digest", "bytes", "loads", "last used")
    )
    print(format_table(headers, rows))
    print(f"{len(entries)} chains, {cache.total_bytes()} bytes in {root}")
    return 0


def _cmd_chains_calibrate(args) -> int:
    """Fit cost models from the warehouse's measured group forensics.

    ``repro chains calibrate DIR``: reads the ``groups`` table, fits
    the per-strategy timing models and the group-budget scalar
    (:mod:`repro.obs.calibrate`), persists anything new to the
    content-addressed ``models`` table, and prints the fitted models.
    Re-running over unchanged history appends nothing.
    """
    from .obs.calibrate import MIN_FIT_ROWS, calibrate_store

    store = _results_store(args.directory)
    models, appended = calibrate_store(store)
    if not models:
        print(
            "no cost models fitted: need a groups table with at least "
            f"{MIN_FIT_ROWS} measured rows per evolution strategy "
            "(run grouped sweeps against this warehouse first)"
        )
        return 1
    print(
        format_table(
            ("target", "rows", "residual", "coefficients", "digest"),
            [
                (
                    model.target,
                    model.rows,
                    f"{model.residual:.4f}",
                    " ".join(f"{c:.4g}" for c in model.coef),
                    model.digest()[:12],
                )
                for model in models
            ],
        )
    )
    print(
        f"{len(models)} models fitted, {appended} new row(s) persisted "
        "to the models table"
    )
    return 0


#: Comparison spellings ``--where`` understands, longest first so
#: ``>=`` wins over ``>`` and ``=`` stays the equality shorthand.
_WHERE_OPS = (">=", "<=", "!=", "==", ">", "<", "=")


def _parse_where(clause: str):
    """Split one ``--where`` clause into ``(column, op, raw value)``."""
    for op in _WHERE_OPS:
        name, found, value = clause.partition(op)
        if found:
            name, value = name.strip(), value.strip()
            if name and value:
                return name, op, value
    raise SystemExit(
        f"results: bad --where {clause!r} (expected column OP value "
        f"with OP in {', '.join(_WHERE_OPS)})"
    )


def _where_predicate(table, clauses):
    """Fold ``--where`` clauses into one predicate (typed per column)."""
    from .results import col

    predicate = None
    for clause in clauses or ():
        name, op, raw = _parse_where(clause)
        kind = table.column(name).dtype.kind
        try:
            if kind in "US":
                value = raw
            elif kind == "b":
                value = raw.lower() in ("1", "true", "yes")
            elif kind in "iu":
                value = int(raw)
            else:
                value = float(raw)
        except ValueError:
            raise SystemExit(
                f"results: --where {clause!r}: {raw!r} is not a valid "
                f"value for column {name!r}"
            )
        column = col(name)
        term = {
            "=": column == value,
            "==": column == value,
            "!=": column != value,
            ">": column > value,
            ">=": column >= value,
            "<": column < value,
            "<=": column <= value,
        }[op]
        predicate = term if predicate is None else predicate & term
    return predicate


def _results_store(directory: str):
    """Open a warehouse, accepting a run directory transparently."""
    import pathlib

    from .results import ResultsStore

    root = pathlib.Path(directory)
    if (root / "warehouse").is_dir():
        root = root / "warehouse"
    if not (root / "segments").is_dir():
        raise SystemExit(f"results: no warehouse at {directory}")
    return ResultsStore(root)


def _results_table(store, args):
    """The selected table with where/group/sort/limit applied."""
    table = store.table(args.table)
    predicate = _where_predicate(table, args.where)
    if predicate is not None:
        table = table.filter(predicate)
    if args.group_by:
        keys = [k for part in args.group_by for k in part.split(",") if k]
        aggregates = {}
        for spec in args.agg or ["count"]:
            fn, _, column = spec.partition(":")
            if fn == "count":
                aggregates["count"] = ("count",)
            else:
                if not column:
                    raise SystemExit(
                        f"results: --agg {spec!r} needs fn:column"
                    )
                aggregates[f"{fn}_{column}"] = (fn, column)
        try:
            table = table.group_by(keys, aggregates)
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"results: {exc}")
    if args.columns:
        names = [c for part in args.columns for c in part.split(",") if c]
        try:
            table = table.project(names)
        except KeyError as exc:
            raise SystemExit(f"results: {exc}")
    if args.sort_by:
        table = table.sort_by(
            [c for part in args.sort_by for c in part.split(",") if c]
        )
    if args.limit is not None:
        table = table.head(args.limit)
    return table


def cmd_results(args) -> int:
    """Query, export, inspect, compact, or feed a results warehouse."""
    import csv
    import io
    import json
    import sys as _sys

    if args.action == "ingest":
        if not args.run_dirs:
            raise SystemExit("results ingest: need at least one run dir")
        import pathlib

        from .results import ResultsStore

        # Same resolution as the read actions: a run directory means
        # its warehouse/, so ingest and query always see one store.
        root = pathlib.Path(args.directory)
        if (root / "warehouse").is_dir():
            root = root / "warehouse"
        store = ResultsStore(root)
        for run_dir in args.run_dirs:
            added = store.ingest_run_directory(run_dir)
            print(f"ingested {added} new records from {run_dir}")
        return 0
    store = _results_store(args.directory)
    if args.action == "vacuum":
        if not args.run_dirs:
            raise SystemExit("results vacuum: need at least one run dir")
        removed = 0
        for run_dir in args.run_dirs:
            status = store.vacuum_run_directory(run_dir)
            removed += status == "removed"
            print(f"{run_dir}: {status}")
        print(f"vacuumed {removed}/{len(args.run_dirs)} run directories")
        return 0 if removed == len(args.run_dirs) else 1
    if args.action == "stats":
        stats = store.stats()
        rows = [
            (name, info["rows"], info["segments"], info["bytes"])
            for name, info in sorted(stats["tables"].items())
        ]
        print(format_table(("table", "rows", "segments", "bytes"), rows))
        memo = stats["memo"]
        print(
            f"memo: {memo['entries']} entries, "
            f"{memo['log_bytes']} log bytes pending compaction"
        )
        return 0
    if args.action == "compact":
        summary = store.compact()
        from .results import QueryMemo

        entries = QueryMemo(store.memo_dir).compact()
        print(
            f"compacted {summary['merged']} merged segments "
            f"({summary['removed']} removed), memo folded to "
            f"{entries} entries"
        )
        return 0
    table = _results_table(store, args)
    if args.action == "query":
        headers, rows = table.to_table()
        if not rows:
            print(f"no rows in table {args.table!r} match")
            return 0
        print(format_table(headers, rows))
        print(f"{len(rows)} rows from {store.root}")
        return 0
    # export
    out = (
        open(args.output, "w", encoding="utf-8")
        if args.output
        else _sys.stdout
    )
    try:
        if args.format == "json":
            from .results.store import _nan_safe

            # NaN cells (unfilled kind-specific columns) degrade to
            # null so the document stays strict JSON.
            rows = [
                {name: _nan_safe(value) for name, value in row.items()}
                for row in table.to_rows()
            ]
            json.dump(rows, out, indent=2, default=str)
            out.write("\n")
        else:
            headers, rows = table.to_table()
            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow(headers)
            writer.writerows(rows)
            out.write(buffer.getvalue())
    finally:
        if args.output:
            out.close()
            print(f"wrote {len(table)} rows to {args.output}")
    return 0


def cmd_metrics(args) -> int:
    """Show or export collected telemetry (counters, gauges, spans).

    ``--chains DIR`` first publishes that chain cache's exact sidecar
    load counts as gauges (the same counts ``repro chains list``
    displays, so the two commands always agree); ``--warehouse DIR``
    folds in the rows sweeps persisted to the warehouse's ``telemetry``
    table.  The ``history`` action instead reads the warehouse's
    telemetry rows *across* sweeps -- one line per (metric, stamp) --
    for trend reading (see OBS.md, "From telemetry to decisions").
    Histogram lines in ``show`` carry p50/p90/p99 estimates derived
    from the 64-bucket log2 bins.
    """
    import json
    import pathlib

    from .obs import OBS, histogram_percentiles, telemetry_rows

    if args.action == "history":
        from .obs.analyze import metrics_history

        if not args.warehouse:
            raise SystemExit("metrics history: needs --warehouse DIR")
        rows = metrics_history(
            _results_store(args.warehouse),
            kind=args.kind,
            name=args.name,
            master_seed=args.master_seed,
        )
        if not rows:
            print("no persisted telemetry matches (run traced sweeps "
                  "with a warehouse first)")
            return 0
        print(
            format_table(
                ("name", "kind", "stamp", "master_seed", "value", "count"),
                [
                    (
                        r["name"], r["kind"], f"{r['stamp']:.6f}",
                        r["master_seed"], f"{r['value']:.6g}", r["count"],
                    )
                    for r in rows
                ],
            )
        )
        return 0
    if args.chains:
        from .chain import ChainDiskCache

        root = pathlib.Path(args.chains)
        # Accept a run directory transparently, like `repro chains`.
        if (root / "chains").is_dir():
            root = root / "chains"
        if not root.is_dir():
            raise SystemExit(f"metrics: no chain cache at {args.chains}")
        ChainDiskCache(root).publish_gauges(OBS.metrics)
    rows = telemetry_rows()
    if args.warehouse:
        store = _results_store(args.warehouse)
        if "telemetry" in store.tables():
            for row in store.table("telemetry").to_rows():
                rows.append(
                    {
                        "kind": str(row["kind"]),
                        "name": str(row["name"]),
                        "value": float(row["value"]),
                        "count": int(row["count"]),
                    }
                )
            rows.sort(key=lambda r: (r["kind"], r["name"]))
    if args.action == "export":
        document = json.dumps(rows, indent=2, sort_keys=True)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
            print(f"wrote {len(rows)} telemetry rows to {args.output}")
        else:
            print(document)
        return 0
    if not rows:
        print("no telemetry collected (tracing off and nothing persisted)")
        return 0

    def detail(row) -> str:
        # Percentile summaries for live histograms: the registry still
        # holds the buckets (persisted rows carry totals only -- see
        # OBS.md on the merge-law caveat).
        if row["kind"] != "hist":
            return ""
        hist = OBS.metrics.histogram(row["name"])
        if hist is None:
            return ""
        pct = histogram_percentiles(hist)
        if not pct:
            return ""
        return " ".join(
            f"{key}={pct[key]:.3g}" for key in ("p50", "p90", "p99")
        )

    print(
        format_table(
            ("kind", "name", "value", "count", "detail"),
            [
                (
                    r["kind"], r["name"], f"{r['value']:.6g}",
                    r["count"], detail(r),
                )
                for r in rows
            ],
        )
    )
    return 0


def _obs_tail(args) -> int:
    """Stream a live run's progress events (``repro obs tail RUN_DIR``)."""
    import pathlib
    import time

    from .obs.live import PROGRESS_NAME, format_progress_event, read_progress

    path = pathlib.Path(args.directory)
    if path.is_dir():
        path = path / PROGRESS_NAME
    if not args.follow and not path.exists():
        raise SystemExit(f"obs tail: no progress log at {path}")
    offset = 0
    while True:
        events, offset = read_progress(path, offset)
        ended = False
        for event in events:
            print(format_progress_event(event))
            ended = ended or event.get("event") == "end"
        if not args.follow or ended:
            return 0
        time.sleep(args.poll)


def _obs_top(args) -> int:
    """Render per-worker heartbeat state (``repro obs top RUN_DIR``)."""
    import pathlib

    from .obs.live import HEARTBEAT_DIR, worker_status

    directory = pathlib.Path(args.directory)
    if (directory / HEARTBEAT_DIR).is_dir():
        directory = directory / HEARTBEAT_DIR
    rows = worker_status(directory)
    if not rows:
        print(f"no heartbeats under {directory} (run a sweep with "
              "--progress and a --run-dir first)")
        return 0
    print(
        format_table(
            ("worker", "phase", "done", "in-flight", "age", "rss", "cpu"),
            [
                (
                    r["worker"],
                    r.get("phase", "?"),
                    r["jobs_finished"],
                    r["in_flight"],
                    f"{r['age']:.1f}s",
                    _format_bytes(r.get("resources", {}).get("rss_peak", 0)),
                    f"{r.get('resources', {}).get('cpu_seconds', 0.0):.1f}s",
                )
                for r in rows
            ],
        )
    )
    return 0


def _format_bytes(count: int) -> str:
    """Human-readable byte count (``1.5GiB``)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def cmd_obs(args) -> int:
    """Cross-run telemetry analytics and live-run inspection.

    ``repro obs diff DIR`` compares the two most recent traced sweeps
    persisted in the warehouse tier by tier (pick explicit sweeps with
    ``--stamps A B`` from ``repro metrics history``); ``repro obs
    tiers DIR`` renders one sweep's wall-clock attribution by span
    self-time.  ``repro obs tail RUN_DIR`` replays (or with
    ``--follow`` streams) a live sweep's progress events; ``repro obs
    top RUN_DIR`` shows per-worker heartbeat state.
    """
    if args.action == "tail":
        return _obs_tail(args)
    if args.action == "top":
        return _obs_top(args)
    from .obs.analyze import diff_sweeps, tier_attribution

    store = _results_store(args.directory)
    if args.action == "tiers":
        rows = tier_attribution(store, stamp=args.stamp)
        if not rows:
            print("no span telemetry persisted (run a traced sweep "
                  "with a warehouse first)")
            return 0
        print(
            format_table(
                ("tier", "self", "calls", "share"),
                [
                    (
                        r["name"], f"{r['seconds'] * 1e3:.3f}ms",
                        r["calls"], f"{r['share'] * 100:.1f}%",
                    )
                    for r in rows
                ],
            )
        )
        return 0
    stamp_a, stamp_b = args.a, args.b
    if args.stamps is not None:
        stamp_a, stamp_b = args.stamps
    try:
        rows = diff_sweeps(store, stamp_a=stamp_a, stamp_b=stamp_b)
    except ValueError as exc:
        raise SystemExit(f"obs diff: {exc}")
    print(
        format_table(
            ("kind", "name", "a", "b", "delta", "ratio"),
            [
                (
                    r["kind"], r["name"], f"{r['a']:.6g}",
                    f"{r['b']:.6g}", f"{r['delta']:+.6g}",
                    "-" if r["ratio"] is None else f"{r['ratio']:.3f}",
                )
                for r in rows
            ],
        )
    )
    return 0


def cmd_mermaid(args) -> int:
    """Print the consistency chain's refinement lattice as mermaid."""
    from .viz import chain_to_mermaid

    alpha, chain = _chain(args)
    task = _make_task(args.task, alpha.n)
    print(chain_to_mermaid(chain, task, max_states=args.max_states))
    return 0


def cmd_report(args) -> int:
    """Run all experiments and write JSON/CSV/Markdown reports."""
    from .analysis import ALL_EXPERIMENTS, iter_all_experiments, write_report

    total = len(ALL_EXPERIMENTS)
    results = []
    for result in iter_all_experiments(engine=_engine_from(args)):
        results.append(result)
        if args.progress:
            verdict = "pass" if result.passed else "FAIL"
            print(
                f"progress: {len(results)}/{total} {result.experiment_id} "
                f"({verdict})",
                file=sys.stderr,
            )
    paths = write_report(results, args.output)
    if getattr(args, "warehouse", None) and not args.no_warehouse:
        # Land the pass/fail history in the warehouse so `repro results
        # query --table experiments` serves it across report runs.
        from .obs import clock
        from .results import ResultsStore
        from .results.store import EXPERIMENT_COLUMNS

        store = ResultsStore(args.warehouse)
        store.append_rows(
            "experiments",
            [
                {
                    "experiment_id": result.experiment_id,
                    "title": result.title,
                    "passed": result.passed,
                    "rows": len(result.rows),
                    # When this row was appended (epoch seconds) -- an
                    # audit field, never an input to any computation;
                    # read through repro.obs.clock so tests can freeze
                    # it.
                    "stamp": clock.now(),
                }
                for result in results
            ],
            EXPERIMENT_COLUMNS,
        )
        print(f"ingested {len(results)} experiment outcomes into "
              f"{args.warehouse}")
    failed = [r.experiment_id for r in results if not r.passed]
    print(f"wrote {paths['json']}")
    print(f"wrote {paths['markdown']}")
    print(
        f"{len(results) - len(failed)}/{len(results)} experiments pass"
    )
    if failed:
        print("FAILED:", ", ".join(failed))
        return 1
    return 0


def cmd_experiments(args) -> int:
    from .analysis import iter_all_experiments

    wanted = set(args.ids)
    failed = []
    for result in iter_all_experiments(engine=_engine_from(args)):
        if wanted and result.experiment_id not in wanted:
            continue
        print(result.render())
        print()
        if not result.passed:
            failed.append(result.experiment_id)
    if failed:
        print("FAILED:", ", ".join(failed))
        return 1
    return 0


def cmd_run(args) -> int:
    """Execute one runner job locally and print its JSON record."""
    import json

    from .runner import RunSpec, execute_run
    from .runner.worker import chain_context_payload

    try:
        spec = RunSpec(
            sizes=args.sizes,
            model=args.model,
            ports=args.ports,
            task=args.task,
            kind=args.kind,
            t=args.t,
            samples=args.samples,
            replicate=args.replicate,
        )
    except ValueError as exc:
        raise SystemExit(f"run: {exc}")
    payload = {
        "spec": spec.to_dict(),
        "master_seed": args.master_seed,
        "index": 0,
        # Carry the parent's chain context (including the tracing
        # flag) exactly as sweep payloads do, so `repro trace run`
        # stays traced through the worker's context application.
        **chain_context_payload(),
    }
    warehouse = _warehouse_from(args)
    if warehouse:
        # Same memo/merge semantics as sweeps: exact cells are served
        # whole, sampled cells reuse memoized substream blocks and a
        # larger --samples budget computes only the increment.
        from .results.store import ResultsStore

        payload["results_memo"] = str(ResultsStore(warehouse).memo_dir)
    if args.progress:
        # One job, no run directory: the lightweight stderr form only.
        print(f"progress: 0/1 {spec.job_key}", file=sys.stderr)
    record = execute_run(payload)
    if args.progress:
        print(f"progress: 1/1 {spec.job_key}", file=sys.stderr)
    # Telemetry rides next to the record fields; the printed record's
    # bytes stay identical with tracing on or off.
    telemetry = record.pop("_telemetry", None)
    if telemetry is not None:
        from .obs import merge_telemetry

        merge_telemetry(telemetry)
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def cmd_estimate(args) -> int:
    """Monte-Carlo estimate of ``Pr[S(t)]`` over memoized substreams.

    One-shot with ``--samples``, adaptive with ``--target-width`` (spend
    increments until the Wilson interval is narrow enough).  With
    ``--warehouse``, full substream blocks are served from and recorded
    to the cross-run memo, so repeated estimates of one cell -- at any
    mix of budgets -- never recompute a block: a warm 10k-sample cell
    asked for 20k samples computes exactly the second 10k.
    """
    import json

    from .analysis.montecarlo import (
        adaptive_estimate,
        estimate_solving_probability,
    )
    from .results.memo import configure_query_memo

    alpha = RandomnessConfiguration.from_group_sizes(args.sizes)
    task = _make_task(args.task, alpha.n)
    ports = None
    if args.model == "clique":
        ports = _make_ports(args.ports, args.sizes, args.seed)
    warehouse = _warehouse_from(args)
    if warehouse:
        from .results.store import ResultsStore

        configure_query_memo(str(ResultsStore(warehouse).memo_dir))
    try:
        if args.target_width is not None:
            estimate = adaptive_estimate(
                alpha,
                task,
                args.t,
                ports,
                target_width=args.target_width,
                confidence=args.confidence,
                batch=args.increment,
                max_samples=args.max_samples,
                seed=args.seed,
                method=args.method,
            )
        else:
            estimate = estimate_solving_probability(
                alpha,
                task,
                args.t,
                ports,
                samples=args.samples,
                confidence=args.confidence,
                seed=args.seed,
                method=args.method,
            )
    finally:
        if warehouse:
            configure_query_memo(None)
    print(
        json.dumps(
            {
                "estimate": estimate.probability,
                "interval": [estimate.low, estimate.high],
                "confidence": estimate.confidence,
                "successes": estimate.successes,
                "samples": estimate.samples,
                "t": args.t,
                "method": args.method,
            },
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def cmd_sweep(args) -> int:
    """Expand a sweep, execute it on the chosen engine, print the table."""
    from .runner import SweepSpec, run_sweep

    if (args.shapes is None) == (args.n is None):
        raise SystemExit("sweep needs exactly one of --n or --shapes")
    shapes = (
        tuple(enumerate_size_shapes(args.n))
        if args.n is not None
        else tuple(args.shapes)
    )
    try:
        sweep = SweepSpec(
            shapes=shapes,
            models=tuple(args.models),
            ports=tuple(args.ports),
            tasks=tuple(args.tasks),
            kind=args.kind,
            t=args.t,
            samples=args.samples,
            replicates=tuple(range(args.replicates)),
            master_seed=args.master_seed,
        )
        # run_sweep expands first, so a bad --tasks spec or a run-dir
        # manifest mismatch both surface here before any job executes.
        progress = (
            _stderr_progress(len(sweep.expand())) if args.progress else None
        )
        outcome = run_sweep(
            sweep,
            engine=_engine_from(args),
            run_dir=args.run_dir,
            warehouse=_warehouse_from(args),
            progress=progress,
            live=_live_from(args),
        )
    except ValueError as exc:
        raise SystemExit(f"sweep: {exc}")
    print(outcome.result().render())
    print(
        f"jobs: {outcome.total} total, {outcome.executed} executed, "
        f"{outcome.resumed} resumed"
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Topology of Randomized Symmetry-Breaking "
            "Distributed Computing' (PODC 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_task=True):
        p.add_argument("sizes", type=_parse_sizes, help="group sizes, e.g. 2,3")
        p.add_argument(
            "--model", choices=("blackboard", "clique"), default="blackboard"
        )
        p.add_argument(
            "--ports",
            choices=("adversarial", "round-robin", "random"),
            default="adversarial",
            help="port assignment for --model clique",
        )
        p.add_argument("--seed", type=int, default=0)
        if with_task:
            p.add_argument(
                "--task",
                default="leader",
                help=(
                    "leader | k-leader:K | weak-sb | unique-ids | deputy | "
                    "threshold:LO,HI | teams:S1,S2,..."
                ),
            )

    p = sub.add_parser("solve", help="decide eventual solvability")
    add_common(p)
    _add_backend_arg(p)
    _add_batch_arg(p)
    _add_quotient_arg(p)
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("series", help="exact Pr[S(t)] series")
    add_common(p)
    _add_backend_arg(p)
    _add_batch_arg(p)
    _add_quotient_arg(p)
    p.add_argument("--t-max", type=int, default=8)
    p.set_defaults(func=cmd_series)

    p = sub.add_parser("expected-time", help="exact expected solving time")
    add_common(p)
    _add_backend_arg(p)
    _add_batch_arg(p)
    _add_quotient_arg(p)
    p.set_defaults(func=cmd_expected_time)

    p = sub.add_parser("phase-diagram", help="sweep all shapes of n")
    p.add_argument("n", type=int)
    p.add_argument("--task", default="leader")
    p.add_argument(
        "--run-dir", default=None, help="JSONL run directory (resumable)"
    )
    _add_engine_args(p)
    _add_batch_arg(p)
    _add_group_arg(p)
    _add_quotient_arg(p)
    _add_policy_arg(p)
    _add_warehouse_args(p)
    _add_profile_arg(p)
    _add_progress_args(p)
    p.set_defaults(func=cmd_phase_diagram)

    p = sub.add_parser("protocol", help="run an election protocol")
    add_common(p, with_task=False)
    p.add_argument("--k", type=int, default=1, help="number of leaders")
    p.add_argument("--max-rounds", type=int, default=96)
    p.set_defaults(func=cmd_protocol)

    p = sub.add_parser("figures", help="render Figures 1-3 as text")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("experiments", help="run reproduction experiments")
    p.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    _add_engine_args(p)
    _add_batch_arg(p)
    _add_group_arg(p)
    _add_quotient_arg(p)
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "run", help="execute one runner job and print its JSON record"
    )
    p.add_argument("sizes", type=_parse_sizes, help="group sizes, e.g. 2,3")
    p.add_argument(
        "--model", choices=runner_spec.MODELS, default="blackboard"
    )
    p.add_argument(
        "--ports",
        choices=_CLI_PORT_KINDS,
        default="adversarial",
        help="port assignment for --model clique",
    )
    p.add_argument(
        "--task",
        default="leader",
        help=(
            "leader | k-leader:K | weak-sb | unique-ids | deputy | "
            "threshold:LO,HI | teams:S1,S2,..."
        ),
    )
    p.add_argument("--kind", choices=runner_spec.KINDS, default="exact")
    p.add_argument("--t", type=int, default=4, help="horizon for --kind sample")
    p.add_argument("--samples", type=int, default=2000)
    p.add_argument("--replicate", type=int, default=0)
    p.add_argument("--master-seed", type=int, default=0)
    _add_quotient_arg(p)
    _add_policy_arg(p)
    _add_warehouse_args(p)
    _add_progress_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "estimate",
        help="Monte-Carlo Pr[S(t)] estimate (mergeable memoized substreams)",
    )
    add_common(p)
    p.add_argument("--t", type=int, default=4, help="horizon")
    p.add_argument(
        "--samples",
        type=int,
        default=2000,
        help="one-shot sample budget (superseded by --target-width)",
    )
    p.add_argument(
        "--target-width",
        type=float,
        default=None,
        help=(
            "adaptive mode: extend the substream until the Wilson "
            "interval is at most this wide (or --max-samples is hit)"
        ),
    )
    p.add_argument("--confidence", type=float, default=0.95)
    p.add_argument(
        "--increment",
        type=int,
        default=1000,
        help="adaptive top-up size (one memoizable block by default)",
    )
    p.add_argument("--max-samples", type=int, default=64000)
    p.add_argument(
        "--method",
        choices=("auto", "bits", "chain", "scalar"),
        default="auto",
        help=(
            "batch solver: bit-level knowledge partitions (auto/bits), "
            "compiled-chain trajectories (chain), or the per-trajectory "
            "oracle loop (scalar)"
        ),
    )
    _add_warehouse_args(p)
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser(
        "sweep", help="expand and execute a sweep (parallel, resumable)"
    )
    p.add_argument("--n", type=int, help="sweep every size shape of n")
    p.add_argument(
        "--shapes",
        type=_parse_sizes,
        nargs="+",
        help="explicit size shapes, e.g. --shapes 2,3 1,2,2",
    )
    p.add_argument(
        "--models",
        nargs="+",
        choices=runner_spec.MODELS,
        default=runner_spec.MODELS,
    )
    p.add_argument(
        "--ports",
        nargs="+",
        choices=_CLI_PORT_KINDS,
        default=("adversarial",),
    )
    p.add_argument(
        "--tasks",
        nargs="+",
        default=("leader",),
        help="task specs (see --task on solve)",
    )
    p.add_argument("--kind", choices=runner_spec.KINDS, default="exact")
    p.add_argument("--t", type=int, default=4, help="horizon for --kind sample")
    p.add_argument("--samples", type=int, default=2000)
    p.add_argument(
        "--replicates", type=int, default=1, help="independent repetitions"
    )
    p.add_argument("--master-seed", type=int, default=0)
    p.add_argument(
        "--run-dir", default=None, help="JSONL run directory (resumable)"
    )
    _add_engine_args(p)
    _add_batch_arg(p)
    _add_group_arg(p)
    _add_quotient_arg(p)
    _add_policy_arg(p)
    _add_warehouse_args(p)
    _add_profile_arg(p)
    _add_progress_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "graphs", help="anonymous-graph worst-case analysis (k=1 slice)"
    )
    p.add_argument(
        "graph",
        help="ring:N | path:N | star:N | clique:N | bipartite:M,N",
    )
    p.add_argument("--labeling-limit", type=int, default=1 << 16)
    p.set_defaults(func=cmd_graphs)

    p = sub.add_parser(
        "mermaid", help="refinement lattice as a mermaid state diagram"
    )
    add_common(p)
    p.add_argument("--max-states", type=int, default=64)
    p.set_defaults(func=cmd_mermaid)

    p = sub.add_parser(
        "chains",
        help="list/inspect/prune a chain disk cache; calibrate cost models",
    )
    p.add_argument(
        "action", choices=("list", "inspect", "prune", "calibrate")
    )
    p.add_argument(
        "directory",
        help=(
            "cache directory (or a run directory containing chains/); "
            "for calibrate: a warehouse directory (or a run directory "
            "containing warehouse/) whose groups table to fit from"
        ),
    )
    p.add_argument(
        "--max-bytes", type=int, default=None,
        help="prune: evict LRU chains until the cache fits this many bytes",
    )
    p.add_argument(
        "--max-entries", type=int, default=None,
        help="prune: evict LRU chains down to this many files",
    )
    p.add_argument(
        "--all", action="store_true", help="prune: remove every cached chain"
    )
    p.set_defaults(func=cmd_chains)

    p = sub.add_parser(
        "results",
        help="query/export/stats/compact/ingest/vacuum a results warehouse",
    )
    p.add_argument(
        "action",
        choices=("query", "export", "stats", "compact", "ingest", "vacuum"),
    )
    p.add_argument(
        "directory",
        help="warehouse directory (or a run directory containing warehouse/)",
    )
    p.add_argument(
        "run_dirs",
        nargs="*",
        help=(
            "ingest: run directories whose records.jsonl to ingest; "
            "vacuum: run directories to delete once fully ingested"
        ),
    )
    p.add_argument(
        "--table",
        default="records",
        help=(
            "table to read (records | groups | experiments | telemetry; "
            "default records)"
        ),
    )
    p.add_argument(
        "--where",
        action="append",
        metavar="COL[OP]VALUE",
        help="filter clause, e.g. model=clique or gcd>=2 (repeatable, ANDed)",
    )
    p.add_argument(
        "--group-by",
        action="append",
        metavar="COLS",
        help="group by comma-separated key columns",
    )
    p.add_argument(
        "--agg",
        action="append",
        metavar="FN[:COL]",
        help=(
            "aggregate for --group-by: count, or sum/mean/min/max/any/all"
            ":column (repeatable; default count)"
        ),
    )
    p.add_argument(
        "--columns", action="append", metavar="COLS",
        help="project to comma-separated columns",
    )
    p.add_argument(
        "--sort-by", action="append", metavar="COLS",
        help="sort rows by comma-separated columns",
    )
    p.add_argument("--limit", type=int, default=None, help="keep first N rows")
    p.add_argument(
        "--format", choices=("csv", "json"), default="csv",
        help="export format (default csv)",
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="export: write here instead of stdout",
    )
    p.set_defaults(func=cmd_results)

    p = sub.add_parser(
        "report", help="run all experiments and write JSON/CSV/Markdown"
    )
    p.add_argument("output", help="output directory")
    _add_engine_args(p)
    _add_batch_arg(p)
    _add_group_arg(p)
    _add_quotient_arg(p)
    _add_policy_arg(p)
    _add_warehouse_args(p)
    _add_profile_arg(p)
    _add_progress_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "obs",
        help=(
            "telemetry analytics (diff sweeps, tier attribution) and "
            "live-run inspection (tail progress, worker top)"
        ),
    )
    p.add_argument("action", choices=("diff", "tiers", "tail", "top"))
    p.add_argument(
        "directory",
        help=(
            "diff/tiers: warehouse directory (or a run directory "
            "containing warehouse/); tail/top: a live run directory"
        ),
    )
    p.add_argument(
        "--a", type=float, default=None, metavar="STAMP",
        help="diff: baseline sweep stamp (default: second-most-recent)",
    )
    p.add_argument(
        "--b", type=float, default=None, metavar="STAMP",
        help="diff: comparison sweep stamp (default: most recent)",
    )
    p.add_argument(
        "--stamps", type=float, nargs=2, default=None,
        metavar=("A", "B"),
        help="diff: the two sweep stamps to compare (same as --a A --b B)",
    )
    p.add_argument(
        "--stamp", type=float, default=None,
        help="tiers: sweep stamp to attribute (default: most recent)",
    )
    p.add_argument(
        "--follow", action="store_true",
        help="tail: keep polling until the run's end event arrives",
    )
    p.add_argument(
        "--poll", type=float, default=1.0,
        help="tail --follow: poll interval in seconds (default 1)",
    )
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "metrics", help="show/export collected telemetry; cross-run history"
    )
    p.add_argument("action", choices=("show", "export", "history"))
    p.add_argument(
        "--kind",
        choices=("counter", "gauge", "hist", "span", "span.self"),
        default=None,
        help="history: only this telemetry kind",
    )
    p.add_argument(
        "--name",
        default=None,
        help="history: only metric names containing this substring",
    )
    p.add_argument(
        "--master-seed",
        type=int,
        default=None,
        help="history: only sweeps run under this master seed",
    )
    p.add_argument(
        "--chains",
        default=None,
        metavar="DIR",
        help=(
            "publish this chain cache's load-count gauges first "
            "(cache directory or a run directory containing chains/)"
        ),
    )
    p.add_argument(
        "--warehouse",
        default=None,
        metavar="DIR",
        help=(
            "fold in this warehouse's persisted telemetry table "
            "(warehouse directory or a run directory containing "
            "warehouse/)"
        ),
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="export: write JSON here instead of stdout",
    )
    p.set_defaults(func=cmd_metrics)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `repro trace <command ...>` and a bare `--trace` anywhere are
    # handled before argparse so every subcommand gets them for free.
    traced = False
    if argv and argv[0] == "trace":
        argv = argv[1:]
        traced = True
        if not argv:
            print("usage: repro trace <command> [args ...]", file=sys.stderr)
            return 2
    if "--trace" in argv:
        argv = [token for token in argv if token != "--trace"]
        traced = True
    parser = build_parser()
    args = parser.parse_args(argv)
    if hasattr(args, "batch"):
        from .chain import configure_batching

        # Process-wide: run_sweep additionally forwards the toggle into
        # pool workers via the job payloads.
        configure_batching(args.batch)
    if hasattr(args, "group_chains"):
        from .chain import configure_grouping

        # Same deal: process-wide here, forwarded to pool workers by
        # the sweep/experiment payloads.
        configure_grouping(args.group_chains)
    if hasattr(args, "quotient"):
        from .chain import configure_quotient

        # Tri-state: the flag absent means "auto" (quotient whenever
        # the configuration's automorphism group is nontrivial); the
        # sweep payloads forward the resolved mode into pool workers.
        configure_quotient(
            "auto" if args.quotient is None
            else "on" if args.quotient else "off"
        )
    if hasattr(args, "policy"):
        # Process-wide like the toggles above; the sweep/experiment
        # payloads forward the resolved policy (mode + models) into
        # pool workers so both sides plan identically.
        _configure_policy_from(args)
    profile_out = getattr(args, "profile_out", None)
    if traced or profile_out:
        from .obs import configure_tracing

        configure_tracing(True)
    from .obs import OBS, trace

    if OBS.enabled:
        with trace(f"repro.{args.command}"):
            status = args.func(args)
    else:
        status = args.func(args)
    if profile_out:
        import json

        from .obs import build_profile

        document = build_profile(command=args.command, argv=tuple(argv))
        with open(profile_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote profile to {profile_out}")
    if traced:
        from .obs import render_span_tree

        print()
        print(render_span_tree())
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
