"""Shim so the package installs in environments without the ``wheel`` package.

``pip install -e .`` needs ``bdist_wheel`` for modern editable installs; on
offline machines without the ``wheel`` distribution, ``python setup.py
develop`` (driven by this file) provides the same result.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
